"""The project's invariant rules (``REP001``–``REP006``).

Each rule encodes one convention the serving system depends on; the rule
docstrings are the normative statement, ``docs/architecture.md`` §11 the
narrative rationale.  Rules are deliberately scoped by package-relative
path (see :func:`repro.analysis.lint.module_subpath`) so a fixture file
passed under a synthetic ``src/repro/...`` path is linted exactly like the
real module.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import Finding, LintModule, Rule

__all__ = [
    "ClockDisciplineRule",
    "ThreadDisciplineRule",
    "DurableRenameRule",
    "ExceptionEvidenceRule",
    "MirroredGaugeRule",
    "MutationHookRule",
    "BatchDecodeRule",
    "DEFAULT_RULES",
]


# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #
def _time_bindings(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names bound to the ``time`` module and to ``time.time``/``time.monotonic``."""
    module_aliases: Set[str] = set()
    member_aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    module_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in ("time", "monotonic"):
                    member_aliases.add(alias.asname or alias.name)
    return module_aliases, member_aliases


def _imported_names(tree: ast.Module, module: str, member: str) -> Set[str]:
    """Local names bound to ``module.member`` via ``from module import member``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name == member:
                    names.add(alias.asname or alias.name)
    return names


def _keyword_names(call: ast.Call) -> Set[Optional[str]]:
    return {keyword.arg for keyword in call.keywords}


def _walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module) -> Iterator[Tuple[Optional[str], Sequence[ast.stmt]]]:
    """Yield ``(function_name, body)`` for module scope and every function."""
    yield None, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node.body


def _enclosing_functions(tree: ast.Module) -> Dict[ast.AST, str]:
    """Map every AST node to the name of its innermost enclosing function."""
    owners: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, owner: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            child_owner = owner
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_owner = child.name
            if child_owner is not None:
                owners[child] = child_owner
            visit(child, child_owner)

    visit(tree, None)
    return owners


# --------------------------------------------------------------------- #
# REP001 — injected clocks only
# --------------------------------------------------------------------- #
class ClockDisciplineRule(Rule):
    """No direct ``time.time()``/``time.monotonic()`` calls in modules that
    declare injectable clocks (``resilience/*`` and ``endpoint/client.py``).

    Those modules take a ``clock=`` parameter precisely so deterministic
    tests can script time; a direct call in a method body silently escapes
    the injection and reintroduces wall-clock flakiness.  A *reference*
    such as the ``clock=time.monotonic`` default argument is fine — only
    calls are flagged.
    """

    name = "REP001"
    description = (
        "no direct time.time()/time.monotonic() calls in clock-injectable "
        "modules (resilience/*, endpoint/client.py); use the injected clock"
    )

    SCOPES = ("resilience/",)
    FILES = ("endpoint/client.py",)

    def applies_to(self, module: LintModule) -> bool:
        return module.subpath.startswith(self.SCOPES) or module.subpath in self.FILES

    def check(self, module: LintModule) -> Iterator[Finding]:
        module_aliases, member_aliases = _time_bindings(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("time", "monotonic")
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
            ):
                called = f"{func.value.id}.{func.attr}"
            elif isinstance(func, ast.Name) and func.id in member_aliases:
                called = func.id
            else:
                continue
            yield self.finding(
                module,
                node,
                f"direct {called}() call in a clock-injectable module; "
                "route it through the injected clock",
            )


# --------------------------------------------------------------------- #
# REP002 — background threads are identifiable and daemon-explicit
# --------------------------------------------------------------------- #
class ThreadDisciplineRule(Rule):
    """Every ``threading.Thread(...)`` must pass ``name=`` and an explicit
    ``daemon=``; every ``ThreadPoolExecutor(...)`` must pass
    ``thread_name_prefix=``.

    Post-mortems and the stuck-thread sweep identify threads by name, and
    an implicit daemon flag (inherited from the creating thread) has
    already shipped one silent thread leak.  Calls forwarding ``**kwargs``
    are skipped — the linter cannot see through them.
    """

    name = "REP002"
    description = (
        "threading.Thread(...) must pass name= and explicit daemon=; "
        "ThreadPoolExecutor(...) must pass thread_name_prefix="
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        thread_names = _imported_names(module.tree, "threading", "Thread")
        pool_names = _imported_names(module.tree, "concurrent.futures", "ThreadPoolExecutor")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_thread = (
                isinstance(func, ast.Attribute)
                and func.attr == "Thread"
                and isinstance(func.value, ast.Name)
                and func.value.id == "threading"
            ) or (isinstance(func, ast.Name) and func.id in thread_names)
            is_pool = (
                isinstance(func, ast.Attribute) and func.attr == "ThreadPoolExecutor"
            ) or (isinstance(func, ast.Name) and func.id in pool_names)
            if not (is_thread or is_pool):
                continue
            keywords = _keyword_names(node)
            if None in keywords:
                continue  # **kwargs forwarding: opaque to static analysis
            if is_thread:
                missing = [kw for kw in ("name", "daemon") if kw not in keywords]
                if missing:
                    yield self.finding(
                        module,
                        node,
                        "threading.Thread(...) without "
                        + " and ".join(f"{kw}=" for kw in missing)
                        + "; background threads must be named and daemon-explicit",
                    )
            elif "thread_name_prefix" not in keywords:
                yield self.finding(
                    module,
                    node,
                    "ThreadPoolExecutor(...) without thread_name_prefix=; "
                    "pool threads must be identifiable in stack dumps",
                )


# --------------------------------------------------------------------- #
# REP003 — durable renames carry an fsync
# --------------------------------------------------------------------- #
class DurableRenameRule(Rule):
    """In ``persist/*``, a function calling ``os.rename``/``os.replace``
    must also call an fsync (``os.fsync`` or an ``*fsync*`` helper such as
    ``_fsync_dir``) in the same function.

    A rename without a directory fsync is durable only until the first
    power cut: the metadata journal may still hold the old directory
    entry.  The snapshot store's publish path (``_write_file`` +
    ``_fsync_dir`` + ``os.replace``) is the model.
    """

    name = "REP003"
    description = (
        "persist/*: os.rename/os.replace of durable files requires an "
        "fsync in the same function"
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.subpath.startswith("persist/")

    @staticmethod
    def _is_os_rename(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("rename", "replace")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "os"
        )

    @staticmethod
    def _is_fsync_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Attribute):
            return "fsync" in func.attr
        if isinstance(func, ast.Name):
            return "fsync" in func.id
        return False

    def check(self, module: LintModule) -> Iterator[Finding]:
        for _name, body in _scopes(module.tree):
            renames = []
            fsyncs = False
            for node in _walk_scope(body):
                if self._is_os_rename(node):
                    renames.append(node)
                elif self._is_fsync_call(node):
                    fsyncs = True
            if fsyncs:
                continue
            for node in renames:
                yield self.finding(
                    module,
                    node,
                    f"os.{node.func.attr}() without an fsync in the same "  # type: ignore[union-attr]
                    "function; the rename is not durable across a crash",
                )


# --------------------------------------------------------------------- #
# REP004 — swallowed exceptions leave evidence
# --------------------------------------------------------------------- #
class ExceptionEvidenceRule(Rule):
    """A handler catching ``Exception``/``BaseException`` (or bare) must
    re-raise, use the caught exception, or record evidence (a counter
    increment or a ``last_*_error`` slot).

    The WAL's poison-closed discipline is the model: a swallowed failure
    bumps ``wal_failures`` and lands in ``last_wal_error``, so operators
    can see it in ``/metrics`` instead of debugging a silent gap.
    """

    name = "REP004"
    description = (
        "broad except handlers must re-raise, use the caught exception, or "
        "record a counter / last_*_error slot"
    )

    _EVIDENCE_ATTR = re.compile(r"(error|failure|retries|restart|count)", re.IGNORECASE)
    _EVIDENCE_CALL = re.compile(r"^(record|note|count|incr|increment|observe|mark)", re.IGNORECASE)

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        kind = handler.type
        if kind is None:
            return True
        names = []
        if isinstance(kind, ast.Name):
            names = [kind.id]
        elif isinstance(kind, ast.Tuple):
            names = [elt.id for elt in kind.elts if isinstance(elt, ast.Name)]
        return any(name in ("Exception", "BaseException") for name in names)

    def _has_evidence(self, handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if bound is not None and isinstance(node, ast.Name) and node.id == bound:
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    elements = target.elts if isinstance(target, ast.Tuple) else [target]
                    for element in elements:
                        if isinstance(element, ast.Attribute) and self._EVIDENCE_ATTR.search(
                            element.attr
                        ):
                            return True
            if isinstance(node, ast.Call):
                func = node.func
                callee = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else ""
                )
                if self._EVIDENCE_CALL.match(callee):
                    return True
        return False

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if self._has_evidence(node):
                continue
            yield self.finding(
                module,
                node,
                "broad exception handler swallows the error without "
                "re-raising, using it, or recording a counter/last_*_error",
            )


# --------------------------------------------------------------------- #
# REP005 — mirrored gauges are assigned, never accumulated
# --------------------------------------------------------------------- #
class MirroredGaugeRule(Rule):
    """Mirrored ``ServiceCounters`` gauges may only be written by plain
    assignment at their registered mirror sites, never with ``+=``.

    These five fields mirror cumulative totals owned elsewhere (the result
    cache, the endpoint's admission gate, the fleet monitor, the replica
    breakers); ``merge``/``add`` take ``max`` over them.  An ``+=``
    anywhere — or an assignment outside the registered sites — would
    double-count the owner's total.
    """

    name = "REP005"
    description = (
        "mirrored gauges (endpoint_requests, shed_load, stale_rejections, "
        "worker_restarts, breaker_opens) are written by assignment at "
        "registered mirror sites only, never +="
    )

    #: Mirrored fields of :class:`repro.serve.metrics.ServiceCounters`.
    GAUGES = frozenset(
        ["endpoint_requests", "shed_load", "stale_rejections", "worker_restarts", "breaker_opens"]
    )
    #: gauge -> {(module subpath, function name)} allowed to assign it.
    MIRROR_SITES: Dict[str, Set[Tuple[str, str]]] = {
        "stale_rejections": {("serve/service.py", "_serve")},
        "endpoint_requests": {("serve/service.py", "record_endpoint")},
        "shed_load": {("serve/service.py", "record_endpoint")},
        "worker_restarts": {("serve/service.py", "record_resilience")},
        "breaker_opens": {("serve/service.py", "record_resilience")},
    }

    @classmethod
    def _gauge_target(cls, target: ast.AST) -> Optional[ast.Attribute]:
        """The attribute node when ``target`` writes ``<counters>.<gauge>``."""
        if not (isinstance(target, ast.Attribute) and target.attr in cls.GAUGES):
            return None
        receiver = target.value
        receiver_name = (
            receiver.attr
            if isinstance(receiver, ast.Attribute)
            else receiver.id
            if isinstance(receiver, ast.Name)
            else ""
        )
        # The discipline governs ServiceCounters instances; by project
        # convention those are reachable as ``counters`` / ``*.counters``.
        # Same-named fields on their owning objects (e.g. the result
        # cache's own cumulative stale_rejections) are the mirrored
        # *sources* and stay free to accumulate.
        if receiver_name == "counters" or receiver_name.endswith("_counters"):
            return target
        return None

    def check(self, module: LintModule) -> Iterator[Finding]:
        owners = _enclosing_functions(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AugAssign):
                gauge = self._gauge_target(node.target)
                if gauge is not None:
                    yield self.finding(
                        module,
                        node,
                        f"mirrored gauge {gauge.attr!r} written with an "
                        "augmented assignment; mirror the owner's cumulative "
                        "total by plain assignment instead",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    gauge = self._gauge_target(target)
                    if gauge is None:
                        continue
                    site = (module.subpath, owners.get(node, ""))
                    if site in self.MIRROR_SITES.get(gauge.attr, set()):
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"mirrored gauge {gauge.attr!r} assigned outside its "
                        "registered mirror site(s) "
                        + ", ".join(
                            sorted(
                                f"{path}:{func}"
                                for path, func in self.MIRROR_SITES.get(gauge.attr, set())
                            )
                        ),
                    )


# --------------------------------------------------------------------- #
# REP006 — DualStore mutations fire the listener hook
# --------------------------------------------------------------------- #
class MutationHookRule(Rule):
    """Every public ``DualStore`` mutation method must fire the
    mutation-listener hook — by calling ``self._bump_generation(...)``,
    entering ``self.batch_mutations()``, or delegating to another mutation
    method that does.

    The hook is the seam the WAL, snapshot daemon, and cache invalidation
    hang off; a mutation path that skips it silently desynchronises every
    replica and cache in the system.
    """

    name = "REP006"
    description = (
        "public DualStore mutation methods must fire the mutation-listener "
        "hook (_bump_generation / batch_mutations / delegation)"
    )

    MUTATORS = frozenset(
        [
            "load",
            "insert",
            "delete",
            "transfer_partition",
            "evict_partition",
            "apply_moves",
            "transfer_partitions",
        ]
    )
    HOOKS = frozenset(["_bump_generation", "batch_mutations"])

    def _fires_hook(self, method: ast.FunctionDef) -> bool:
        allowed = self.HOOKS | (self.MUTATORS - {method.name})
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in allowed
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                return True
        return False

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef) and node.name == "DualStore"):
                continue
            for statement in node.body:
                if not isinstance(statement, ast.FunctionDef):
                    continue
                if statement.name not in self.MUTATORS:
                    continue
                if self._fires_hook(statement):
                    continue
                yield self.finding(
                    module,
                    statement,
                    f"DualStore.{statement.name}() never fires the mutation-"
                    "listener hook (_bump_generation / batch_mutations / "
                    "delegation to a hooked mutator)",
                )


# --------------------------------------------------------------------- #
# REP007 — columnar kernels decode in batch, never per row
# --------------------------------------------------------------------- #
class BatchDecodeRule(Rule):
    """No ``decode(...)``/``lookup(...)`` calls inside loop bodies in
    ``relstore/columnar*``.

    The columnar engine's whole bargain is batch kernels over id vectors: a
    per-row dictionary round-trip inside a loop silently reverts a kernel to
    row-at-a-time materialization, the exact hot-path regression this engine
    exists to remove.  Loops (and comprehensions) must pre-resolve terms
    through the batch surfaces — ``decode_many``/``lookup_many``, or
    ``QueryTermSpace.decode_map`` — before iterating.
    """

    name = "REP007"
    description = (
        "relstore/columnar*: no decode()/lookup() calls inside loop bodies; "
        "batch kernels must use decode_many/lookup_many"
    )

    #: The exact per-row call names banned inside loops.  The batch surfaces
    #: (``decode_many``/``lookup_many``/``decode_map``) do not match.
    BANNED = frozenset(["decode", "lookup"])

    def applies_to(self, module: LintModule) -> bool:
        return module.subpath.startswith("relstore/columnar")

    @classmethod
    def _loop_interiors(cls, tree: ast.Module) -> Iterator[ast.AST]:
        """Every node that executes once per iteration of some loop."""
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                for statement in list(node.body) + list(node.orelse):
                    yield from ast.walk(statement)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                per_iteration = (
                    [node.key, node.value] if isinstance(node, ast.DictComp) else [node.elt]
                )
                per_iteration.extend(
                    condition for comp in node.generators for condition in comp.ifs
                )
                for expression in per_iteration:
                    yield from ast.walk(expression)

    def check(self, module: LintModule) -> Iterator[Finding]:
        seen: Set[ast.AST] = set()
        for node in self._loop_interiors(module.tree):
            if not isinstance(node, ast.Call) or node in seen:
                continue
            seen.add(node)
            func = node.func
            called = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if called in self.BANNED:
                yield self.finding(
                    module,
                    node,
                    f"per-row {called}() inside a loop body in a columnar "
                    "kernel; pre-resolve in batch with "
                    f"{called}_many/decode_map before the loop",
                )


DEFAULT_RULES: Tuple[Rule, ...] = (
    ClockDisciplineRule(),
    ThreadDisciplineRule(),
    DurableRenameRule(),
    ExceptionEvidenceRule(),
    MirroredGaugeRule(),
    MutationHookRule(),
    BatchDecodeRule(),
)
