"""Vectorized columnar execution engine (``RelationalStore(engine="columnar")``).

The third engine behind the :class:`~repro.relstore.backend.RelationalBackend`
seam.  Where the ID-space engine (PR 3) pipelines python *int tuples* row by
row, this engine stores and pipelines **term-id columns**:

* :class:`ColumnarTripleTable` keeps the row-oriented base table (mutations,
  tombstones, snapshots, and the secondary indexes are inherited unchanged,
  so WAL/snapshot payloads stay byte-identical) and materializes per-predicate
  **column blocks** — stdlib ``array('q')`` id buffers in partition-scan
  order — lazily, invalidated by the same mutations that bump the store's
  plan generation.  With numpy present (a *feature probe*, never a hard
  dependency) the buffers are wrapped zero-copy as ``int64`` vectors.
* Pattern access is mask selection over those blocks: constants arrive
  pre-resolved on the :class:`~repro.relstore.executor.CompiledStep` (bound
  once per store generation through the existing
  :class:`~repro.relstore.executor.BoundPlanCache`), so a partition scan with
  no residual checks is a zero-copy handover of the cached columns.
* Hash joins build per-column batch probes on the join column: the numpy
  kernel is a sort/searchsorted merge producing gather index vectors, the
  stdlib kernel a bucket dict over one key column — either way the pipeline
  state is a list of columns, never row tuples.
* DISTINCT/LIMIT/FILTER run on id vectors; decode happens exactly once, at
  projection, via :meth:`~repro.rdf.dictionary.TermDictionary.decode_many`
  (through :meth:`QueryTermSpace.decode_map`).  Rule REP007 lints this module
  for stray per-row ``decode``/``lookup`` calls inside loops.

**Work-accounting contract.**  The logical
:class:`~repro.cost.counters.WorkCounters` are bit-identical to the ID-space
engine by construction: ``rows_scanned`` is charged per row a block covers
(the block length — matching or not, exactly what the row loop charges),
``rows_joined`` per produced join tuple (the gather length), ``index_lookups``
at the same two points, and ``results_produced`` after LIMIT.  Output order is
also identical: selections preserve block order (stable masks), join gathers
emit probe rows in pipeline order with build rows in block order (the numpy
merge uses a stable argsort), and DISTINCT keeps first occurrences.  The
differential suite (``tests/test_differential_engine.py``) asserts byte-equal
bindings and counter equality against both retained engines.
"""

from __future__ import annotations

import os
import weakref
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cost.counters import WorkCounters
from repro.errors import QueryExecutionError
from repro.execution import ExecutionResult, ResultTable
from repro.rdf.terms import Literal
from repro.resilience.deadline import PROBE_STRIDE, current_deadline
from repro.sparql.ast import Binding, SelectQuery

from repro.relstore.executor import (
    CompiledPattern,
    CompiledPlan,
    CompiledStep,
    QueryTermSpace,
    _TRUE_ON_EQUAL,
    _UNSAFE_EQUAL_DATATYPES,
    _compile_filter_side,
    check_work_budget,
    compile_plan,
)
from repro.relstore.planner import RelationalPlan
from repro.relstore.table import TripleTable

__all__ = [
    "ColumnarTripleTable",
    "ColumnarExecutor",
    "numpy_available",
    "numpy_enabled",
    "FORCE_STDLIB_ENV",
    "join_block",
    "join_columnar_tables",
    "finish_columnar_pipeline",
]

try:  # pragma: no cover - feature probe, exercised indirectly everywhere
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-free environments
    _numpy = None

#: Environment kill-switch: set to force the stdlib-``array`` kernels even
#: when numpy is importable (the benchmark measures both paths with it).
FORCE_STDLIB_ENV = "REPRO_COLUMNAR_FORCE_STDLIB"


def numpy_available() -> bool:
    """Whether the numpy fast path *could* run in this interpreter."""
    return _numpy is not None


def numpy_enabled() -> bool:
    """The feature probe: numpy importable and not disabled via env."""
    return _numpy is not None and not os.environ.get(FORCE_STDLIB_ENV)


# ---------------------------------------------------------------------- #
# Batch kernels: one strategy object per backing representation
# ---------------------------------------------------------------------- #
class _StdlibKernels:
    """Id-vector kernels over stdlib ``array('q')`` buffers and lists.

    Selections are index lists; gathers are list comprehensions (C-speed
    loops); the join builds a position-bucket dict over the key column only,
    so no row tuples are ever materialized.
    """

    name = "stdlib"

    @staticmethod
    def column(buffer: array):
        return buffer

    @staticmethod
    def empty():
        return ()

    @staticmethod
    def from_ints(values) -> List[int]:
        return list(values)

    @staticmethod
    def tolist(col) -> List[int]:
        return list(col)

    @staticmethod
    def take(col, sel):
        return [col[i] for i in sel]

    @staticmethod
    def concat(parts):
        if len(parts) == 1:
            return parts[0]
        out: List[int] = []
        for part in parts:
            out.extend(part)
        return out

    @staticmethod
    def equal_selection(const_pairs, dup_pairs, count: int):
        """Indices passing every ``col == id`` / ``col == col`` check.

        ``None`` means "every row" (no checks at all) so the caller can hand
        cached columns over without copying.
        """
        if not const_pairs and not dup_pairs:
            return None
        if len(const_pairs) == 1 and not dup_pairs:
            col, required = const_pairs[0]
            return [i for i, value in enumerate(col) if value == required]
        sel = range(count)
        for col, required in const_pairs:
            sel = [i for i in sel if col[i] == required]
        for left_col, right_col in dup_pairs:
            sel = [i for i in sel if left_col[i] == right_col[i]]
        return list(sel)

    @staticmethod
    def hash_join(probe_col, build_col):
        """Gather indices of ``probe ⋈ build`` on one id column.

        Output order matches the row engine's hash join exactly: probe rows
        in pipeline order, and within one key the build rows in block order
        (buckets accumulate positions ascending).
        """
        buckets: Dict[int, List[int]] = {}
        get_bucket = buckets.get
        for position, key in enumerate(build_col):
            bucket = get_bucket(key)
            if bucket is None:
                buckets[key] = [position]
            else:
                bucket.append(position)
        left: List[int] = []
        right: List[int] = []
        left_append = left.append
        right_append = right.append
        left_extend = left.extend
        right_extend = right.extend
        for position, key in enumerate(probe_col):
            bucket = get_bucket(key)
            if bucket is not None:
                if len(bucket) == 1:
                    left_append(position)
                    right_append(bucket[0])
                else:
                    left_extend([position] * len(bucket))
                    right_extend(bucket)
        return left, right, len(left)

    @staticmethod
    def hash_join_multi(probe_cols, build_cols):
        return _hash_join_multi(probe_cols, build_cols)

    @staticmethod
    def cartesian(left_count: int, right_count: int):
        left: List[int] = []
        right: List[int] = []
        block = list(range(right_count))
        for i in range(left_count):
            left.extend([i] * right_count)
            right.extend(block)
        return left, right, left_count * right_count

    @staticmethod
    def distinct_selection(key_cols, count: int):
        """First-occurrence indices of each distinct key, ascending.

        With no key columns every row carries the same (empty) key — only
        the first survives, mirroring the row engine's all-``None`` key.
        """
        if count == 0:
            return []
        if not key_cols:
            return [0]
        out: List[int] = []
        append = out.append
        seen = set()
        add = seen.add
        if len(key_cols) == 1:
            for i, key in enumerate(key_cols[0]):
                if key not in seen:
                    add(key)
                    append(i)
            return out
        for i, key in enumerate(zip(*key_cols)):
            if key not in seen:
                add(key)
                append(i)
        return out


#: Build-side group index memo for the numpy merge join, keyed by the key
#: column's identity.  The build side of a join step is usually a *cached*
#: partition column (the zero-copy handover path), so across the repeated
#: executions the serving layer sees, its stable argsort + grouping — the
#: O(n log n) part of every join — is computed once per block, not per query.
#: Entries validate against a weakref (a recycled ``id()`` can never alias a
#: live array) and die with their arrays; a small sweep bounds the dict.
_GROUP_INDEX_CACHE: Dict[int, Tuple[object, tuple]] = {}
_GROUP_INDEX_CACHE_LIMIT = 512


def _numpy_group_index(build):
    """``(order, unique_keys, group_starts, group_counts)`` of a key column."""
    key = id(build)
    entry = _GROUP_INDEX_CACHE.get(key)
    if entry is not None:
        ref, data = entry
        if ref() is build:
            return data
    np = _numpy
    order = np.argsort(build, kind="stable")
    sorted_keys = build[order]
    unique_keys, group_starts = np.unique(sorted_keys, return_index=True)
    group_counts = np.diff(np.append(group_starts, len(sorted_keys)))
    data = (order, unique_keys, group_starts, group_counts)
    if len(_GROUP_INDEX_CACHE) >= _GROUP_INDEX_CACHE_LIMIT:
        for dead in [k for k, (ref, _) in _GROUP_INDEX_CACHE.items() if ref() is None]:
            del _GROUP_INDEX_CACHE[dead]
        if len(_GROUP_INDEX_CACHE) >= _GROUP_INDEX_CACHE_LIMIT:
            _GROUP_INDEX_CACHE.clear()
    _GROUP_INDEX_CACHE[key] = (weakref.ref(build), data)
    return data


class _NumpyKernels:
    """Vectorized id-vector kernels over ``int64`` numpy arrays.

    The hash join is a sort/searchsorted merge: a *stable* argsort of the
    build keys groups equal keys while preserving block order inside each
    group, so the emitted gather order is identical to the dict-bucket join
    (and therefore to the row engine).
    """

    name = "numpy"

    @staticmethod
    def column(buffer: array):
        if len(buffer) == 0:
            return _numpy.empty(0, dtype=_numpy.int64)
        return _numpy.frombuffer(buffer, dtype=_numpy.int64)

    @staticmethod
    def empty():
        return _numpy.empty(0, dtype=_numpy.int64)

    @staticmethod
    def from_ints(values):
        return _numpy.asarray(values, dtype=_numpy.int64)

    @staticmethod
    def tolist(col) -> List[int]:
        return col.tolist()

    @staticmethod
    def take(col, sel):
        return col[sel]

    @staticmethod
    def concat(parts):
        if len(parts) == 1:
            return parts[0]
        return _numpy.concatenate(parts)

    @staticmethod
    def equal_selection(const_pairs, dup_pairs, count: int):
        mask = None
        for col, required in const_pairs:
            check = col == required
            mask = check if mask is None else (mask & check)
        for left_col, right_col in dup_pairs:
            check = left_col == right_col
            mask = check if mask is None else (mask & check)
        if mask is None:
            return None
        return _numpy.nonzero(mask)[0]

    @staticmethod
    def hash_join(probe_col, build_col):
        np = _numpy
        build = np.asarray(build_col, dtype=np.int64)
        probe = np.asarray(probe_col, dtype=np.int64)
        order, unique_keys, group_starts, group_counts = _numpy_group_index(build)
        slot = np.searchsorted(unique_keys, probe)
        clamped = np.minimum(slot, len(unique_keys) - 1)
        matched = (slot < len(unique_keys)) & (unique_keys[clamped] == probe)
        probe_positions = np.nonzero(matched)[0]
        groups = slot[probe_positions]
        counts = group_counts[groups]
        total = int(counts.sum())
        left = np.repeat(probe_positions, counts)
        out_ends = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(out_ends - counts, counts)
        right = order[np.repeat(group_starts[groups], counts) + within]
        return left, right, total

    @staticmethod
    def hash_join_multi(probe_cols, build_cols):
        return _numpy_hash_join_multi(probe_cols, build_cols)

    @staticmethod
    def cartesian(left_count: int, right_count: int):
        np = _numpy
        left = np.repeat(np.arange(left_count, dtype=np.int64), right_count)
        right = np.tile(np.arange(right_count, dtype=np.int64), left_count)
        return left, right, left_count * right_count

    @staticmethod
    def distinct_selection(key_cols, count: int):
        np = _numpy
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if not key_cols:
            return np.zeros(1, dtype=np.int64)
        if len(key_cols) == 1:
            _, first = np.unique(key_cols[0], return_index=True)
        else:
            stacked = np.stack(key_cols, axis=1)
            _, first = np.unique(stacked, axis=0, return_index=True)
        return np.sort(first)


def select_kernels(use_numpy: Optional[bool] = None):
    """The kernel strategy for one table: probe-selected unless forced.

    ``None`` consults :func:`numpy_enabled`; ``True`` requires numpy (raising
    when absent, so a misconfigured bench fails loudly); ``False`` forces the
    stdlib path.
    """
    if use_numpy is None:
        use_numpy = numpy_enabled()
    if use_numpy:
        if _numpy is None:
            raise QueryExecutionError("numpy kernels requested but numpy is not importable")
        return _NumpyKernels
    return _StdlibKernels


# ---------------------------------------------------------------------- #
# Columnar storage: the row table plus cached id-column blocks
# ---------------------------------------------------------------------- #
class ColumnarTripleTable(TripleTable):
    """A :class:`TripleTable` that serves scans as cached id-column blocks.

    The row-oriented base (mutations, tombstones, ``dump_rows``/``load_rows``
    and the secondary indexes) is inherited unchanged — snapshots and the WAL
    see the exact same logical rows, so persistence needs no new format.  On
    top, per-predicate ``(subjects, objects)`` column pairs (and one full
    ``(s, p, o)`` triple of columns for table scans) are built lazily in scan
    order and dropped on the same mutations that invalidate bound plans:
    inserts drop only the touched predicate's block, deletes/extractions/
    compactions drop everything.
    """

    def __init__(self, dictionary=None, use_numpy: Optional[bool] = None):
        super().__init__(dictionary)
        self.kernels = select_kernels(use_numpy)
        self._partition_columns: Dict[int, Tuple[object, object, int]] = {}
        self._full_columns: Optional[Tuple[object, object, object, int]] = None

    # -- mutation hooks: keep blocks coherent with the row table -------- #
    def insert_row(self, row) -> bool:
        inserted = super().insert_row(row)
        if inserted:
            self._partition_columns.pop(row[1], None)
            self._full_columns = None
        return inserted

    def delete(self, triple) -> bool:
        removed = super().delete(triple)
        if removed:
            self._partition_columns.clear()
            self._full_columns = None
        return removed

    def extract_predicate(self, predicate_id: int):
        removed = super().extract_predicate(predicate_id)
        if removed:
            self._partition_columns.pop(predicate_id, None)
            self._full_columns = None
        return removed

    def compact(self) -> int:
        reclaimed = super().compact()
        if reclaimed:
            self._partition_columns.clear()
            self._full_columns = None
        return reclaimed

    # -- block access --------------------------------------------------- #
    def partition_columns(self, predicate_id: int) -> Tuple[object, object, int]:
        """The ``(subjects, objects, count)`` block of one predicate, cached.

        Built from :meth:`scan_predicate`, so block order *is* scan order —
        the property every ordering guarantee downstream rests on.
        """
        cached = self._partition_columns.get(predicate_id)
        if cached is None:
            subjects = array("q")
            objects = array("q")
            append_subject = subjects.append
            append_object = objects.append
            for row in self.scan_predicate(predicate_id):
                append_subject(row[0])
                append_object(row[2])
            kernels = self.kernels
            cached = (kernels.column(subjects), kernels.column(objects), len(subjects))
            self._partition_columns[predicate_id] = cached
        return cached

    def full_columns(self) -> Tuple[object, object, object, int]:
        """The whole table as ``(s, p, o, count)`` columns in scan order."""
        if self._full_columns is None:
            subjects = array("q")
            predicates = array("q")
            objects = array("q")
            append_subject = subjects.append
            append_predicate = predicates.append
            append_object = objects.append
            for row in self.scan():
                append_subject(row[0])
                append_predicate(row[1])
                append_object(row[2])
            kernels = self.kernels
            self._full_columns = (
                kernels.column(subjects),
                kernels.column(predicates),
                kernels.column(objects),
                len(subjects),
            )
        return self._full_columns

    # -- block matching (the scan access paths) ------------------------- #
    def match_partition(self, matcher: CompiledPattern, predicate_id: int, counters: WorkCounters):
        subjects, objects, count = self.partition_columns(predicate_id)
        return match_block(
            matcher, {0: subjects, 2: objects}, {1: predicate_id}, count, counters, self.kernels
        )

    def match_full(self, matcher: CompiledPattern, counters: WorkCounters):
        subjects, predicates, objects, count = self.full_columns()
        return match_block(
            matcher, {0: subjects, 1: predicates, 2: objects}, {}, count, counters, self.kernels
        )

    def match_index(
        self,
        matcher: CompiledPattern,
        predicate_id: int,
        position: int,
        bound_id: int,
        counters: WorkCounters,
    ):
        subjects, objects, count = self.partition_columns(predicate_id)
        return match_index_block(
            matcher, subjects, objects, predicate_id, position, bound_id, count, counters, self.kernels
        )


# ---------------------------------------------------------------------- #
# Columnar evaluation primitives (shared with the sharded executor)
# ---------------------------------------------------------------------- #
def _empty_block(names: Tuple[str, ...], kernels):
    return names, [kernels.empty() for _ in names], 0


def match_block(
    matcher: CompiledPattern,
    columns_at: Dict[int, object],
    fixed: Dict[int, int],
    count: int,
    counters: WorkCounters,
    kernels,
):
    """Mask-select a column block against a compiled pattern.

    Charges ``rows_scanned`` for every row the block covers — matching or
    not — exactly like the per-row loop in
    :func:`~repro.relstore.executor.match_id_rows`.  ``columns_at`` maps row
    positions to columns; ``fixed`` carries positions the block holds as a
    constant (a partition block's predicate), which const checks compare
    against directly.
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(counters)
    counters.rows_scanned += count
    names = matcher.var_names
    if not matcher.matchable or count == 0:
        return _empty_block(names, kernels)

    const_pairs = []
    for position, required in matcher.const_checks:
        column = columns_at.get(position)
        if column is None:
            if fixed[position] != required:
                return _empty_block(names, kernels)
        else:
            const_pairs.append((column, required))
    dup_pairs = [
        (columns_at[position], columns_at[first]) for position, first in matcher.dup_checks
    ]
    selection = kernels.equal_selection(const_pairs, dup_pairs, count)
    out_cols = []
    for position in matcher.var_positions:
        column = columns_at[position]
        out_cols.append(column if selection is None else kernels.take(column, selection))
    out_count = count if selection is None else len(selection)
    return names, out_cols, out_count


def match_index_block(
    matcher: CompiledPattern,
    subjects,
    objects,
    predicate_id: int,
    position: int,
    bound_id: int,
    count: int,
    counters: WorkCounters,
    kernels,
):
    """A point lookup served as a mask over the cached partition block.

    Emits the same rows — in the same order — and charges the same
    ``rows_scanned`` as iterating the ``(predicate, key)`` secondary index
    through :func:`~repro.relstore.executor.match_id_rows`: both that index's
    bucket and the partition block list rows in insertion order, so masking
    the scan-order block down to the key is order-identical to the bucket
    walk, while the equality test runs at kernel speed instead of one Python
    iteration per indexed row.
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(counters)
    columns_at = {0: subjects, 2: objects}
    base = kernels.equal_selection([(columns_at[position], bound_id)], [], count)
    matched = len(base)
    # The row engine charges every row the index bucket yields, matching or
    # not (residual const checks come after the charge); `matched` is that
    # bucket's length.
    counters.rows_scanned += matched
    names = matcher.var_names
    if not matcher.matchable or not matched:
        return _empty_block(names, kernels)
    sub = {pos: kernels.take(column, base) for pos, column in columns_at.items()}
    const_pairs = []
    for pos, required in matcher.const_checks:
        if pos == position:
            continue  # the index key itself — every selected row passes
        column = sub.get(pos)
        if column is None:  # the predicate slot, fixed by the partition
            if predicate_id != required:
                return _empty_block(names, kernels)
        else:
            const_pairs.append((column, required))
    dup_pairs = [(sub[pos], sub[first]) for pos, first in matcher.dup_checks]
    selection = kernels.equal_selection(const_pairs, dup_pairs, matched)
    out_cols = []
    for pos in matcher.var_positions:
        column = sub[pos]
        out_cols.append(column if selection is None else kernels.take(column, selection))
    return names, out_cols, matched if selection is None else len(selection)


def _hash_join_multi(probe_cols: List[List[int]], build_cols: List[List[int]]):
    """Tuple-key bucket join for patterns sharing several variables."""
    buckets: Dict[Tuple[int, ...], List[int]] = {}
    get_bucket = buckets.get
    for position, key in enumerate(zip(*build_cols)):
        bucket = get_bucket(key)
        if bucket is None:
            buckets[key] = [position]
        else:
            bucket.append(position)
    left: List[int] = []
    right: List[int] = []
    left_extend = left.extend
    right_extend = right.extend
    for position, key in enumerate(zip(*probe_cols)):
        bucket = get_bucket(key)
        if bucket is not None:
            left_extend([position] * len(bucket))
            right_extend(bucket)
    return left, right, len(left)


def _numpy_hash_join_multi(probe_cols, build_cols):
    """Vectorized tuple-key join: dense-rank the composite keys, then merge.

    Both sides' key rows are ranked together by one ``np.unique(axis=0)``
    pass, so equal tuples — and only equal tuples — share a dense id; the
    single-key merge join then produces the standard probe-order /
    build-block-order gather, identical to the dict-bucket fallback.
    """
    np = _numpy
    probe = np.stack([np.asarray(col, dtype=np.int64) for col in probe_cols], axis=1)
    build = np.stack([np.asarray(col, dtype=np.int64) for col in build_cols], axis=1)
    _, inverse = np.unique(np.concatenate([probe, build], axis=0), axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)  # numpy<2.3 returns an (n, 1) inverse for axis=0
    return _NumpyKernels.hash_join(inverse[: len(probe)], inverse[len(probe) :])


def join_block(
    schema: Tuple[str, ...],
    cols: List[object],
    count: int,
    names: Tuple[str, ...],
    block_cols: List[object],
    block_count: int,
    counters: WorkCounters,
    kernels,
) -> Tuple[Tuple[str, ...], List[object], int]:
    """Hash-join a pattern block into the columnar pipeline.

    Mirrors :func:`~repro.relstore.executor.join_id_pattern_rows` decision
    for decision — the empty guard, the pipeline-seed handover, shared-key
    probing versus the cartesian fallback — and charges ``rows_joined`` per
    produced tuple at the same point, so counters and output order are
    bit-identical.
    """
    new_names = tuple(name for name in names if name not in schema)
    if count == 0 or block_count == 0:
        merged = schema + new_names
        return merged, [kernels.empty() for _ in merged], 0

    if not schema and count == 1:
        # The pipeline seed [()]: the pattern block becomes the pipeline.
        counters.rows_joined += block_count
        return tuple(names), list(block_cols), block_count

    deadline = current_deadline()
    if deadline is not None:
        deadline.check(counters)
    shared = [name for name in names if name in schema]
    name_position = {name: i for i, name in enumerate(names)}
    if shared:
        if len(shared) == 1:
            left, right, total = kernels.hash_join(
                cols[schema.index(shared[0])], block_cols[name_position[shared[0]]]
            )
        else:
            probe_cols = [cols[schema.index(name)] for name in shared]
            build_cols = [block_cols[name_position[name]] for name in shared]
            left, right, total = kernels.hash_join_multi(probe_cols, build_cols)
    else:
        left, right, total = kernels.cartesian(count, block_count)
    out_cols = [kernels.take(column, left) for column in cols]
    for name in new_names:
        out_cols.append(kernels.take(block_cols[name_position[name]], right))
    counters.rows_joined += total
    return schema + new_names, out_cols, total


def _transpose_id_rows(id_rows, width: int, kernels) -> List[object]:
    if not id_rows:
        return [kernels.empty() for _ in range(width)]
    return [kernels.from_ints(column) for column in zip(*id_rows)]


def join_columnar_table(
    schema: Tuple[str, ...],
    cols: List[object],
    count: int,
    table: ResultTable,
    space: QueryTermSpace,
    counters: WorkCounters,
    kernels,
    as_view: bool = False,
) -> Tuple[Tuple[str, ...], List[object], int]:
    """Join a migrated intermediate-result table into the columnar pipeline.

    Charging mirrors :func:`~repro.relstore.executor.join_id_result_table`:
    the table's rows are charged (as view rows when ``as_view``) only when
    the pipeline is non-empty, then the join itself runs through
    :func:`join_block` (whose seed/cartesian branches reproduce the row
    path's output order and ``rows_joined`` exactly).
    """
    table_vars = tuple(table.variables)
    new_names = tuple(name for name in table_vars if name not in schema)
    if count == 0:
        merged = schema + new_names
        return merged, [kernels.empty() for _ in merged], 0
    if as_view:
        counters.view_rows_scanned += len(table)
    else:
        counters.rows_scanned += len(table)
    id_rows = table.encoded_rows(space.encode)
    block_cols = _transpose_id_rows(id_rows, len(table_vars), kernels)
    return join_block(schema, cols, count, table_vars, block_cols, len(id_rows), counters, kernels)


def join_columnar_tables(
    schema: Tuple[str, ...],
    cols: List[object],
    count: int,
    extra_tables: Optional[Iterable[ResultTable]],
    space: QueryTermSpace,
    counters: WorkCounters,
    tables_are_views: bool,
    work_budget: Optional[float],
    kernels,
) -> Tuple[Tuple[str, ...], List[object], int]:
    """The pipeline prologue: join migrated tables, budget-checked per table."""
    for table in extra_tables or ():
        schema, cols, count = join_columnar_table(
            schema, cols, count, table, space, counters, kernels, as_view=tables_are_views
        )
        check_work_budget(counters, work_budget)
    return schema, cols, count


def _filter_selection(
    schema: Tuple[str, ...],
    cols: List[object],
    count: int,
    filters,
    space: QueryTermSpace,
    kernels,
):
    """Surviving row indices under the query's filters, or ``None`` for all.

    Semantics are byte-for-byte those of
    :func:`~repro.relstore.executor._apply_id_filters` — the id fast path for
    equal ids, the unsafe-datatype carve-out, the decode fallback — but every
    operand id is decoded **once, in batch, before the loop** via
    :meth:`QueryTermSpace.decode_map` (decoding is side-effect-free, so
    pre-decoding ids the row engine would skip cannot diverge), which is the
    REP007 discipline: no per-row decode calls inside the loop.
    """
    compiled = []
    for flt in filters:
        left = _compile_filter_side(flt.left, schema, space)
        right = _compile_filter_side(flt.right, schema, space)
        if left[0] == "unbound" or right[0] == "unbound":
            # An unbound operand fails the filter for every row.
            return kernels.from_ints([]), 0
        compiled.append((flt, left, right))

    operand_ids = set()
    positions = set()
    for _flt, (left_kind, left_value, _), (right_kind, right_value, _) in compiled:
        if left_kind == "const":
            operand_ids.add(left_value)
        else:
            positions.add(left_value)
        if right_kind == "const":
            operand_ids.add(right_value)
        else:
            positions.add(right_value)
    operand_cols = {position: kernels.tolist(cols[position]) for position in positions}
    for column in operand_cols.values():
        operand_ids.update(column)
    id_to_term = space.decode_map(operand_ids)

    def verdict_for(flt, left_kind, left_id, right_kind, right_id) -> bool:
        if left_id == right_id:
            term = id_to_term[left_id]
            if not (isinstance(term, Literal) and term.datatype in _UNSAFE_EQUAL_DATATYPES):
                return flt.operator in _TRUE_ON_EQUAL
            # Numeric literals fall through to Filter.evaluate: a double
            # may be NaN (no comparison holds, even reflexively) and a
            # malformed integer lexical must raise like the reference.
        fallback: Binding = {}
        if left_kind == "var":
            fallback[flt.left.name] = id_to_term[left_id]  # type: ignore[union-attr]
        if right_kind == "var":
            fallback[flt.right.name] = id_to_term[right_id]  # type: ignore[union-attr]
        return bool(flt.evaluate(fallback))

    # Verdicts are a pure function of the operand-id pair, so each distinct
    # (filter, left, right) triple is evaluated once — at its first occurrence
    # in row order, which keeps malformed-lexical ValueErrors surfacing at
    # exactly the row the per-row loop would raise them.
    verdicts: Dict[Tuple[int, int, int], bool] = {}
    get_verdict = verdicts.get
    deadline = current_deadline()
    keep: List[int] = []
    append = keep.append
    for i in range(count):
        if deadline is not None and not i % PROBE_STRIDE:
            deadline.check()
        keep_row = True
        for index, (flt, (left_kind, left_value, _), (right_kind, right_value, _)) in enumerate(
            compiled
        ):
            left_id = operand_cols[left_value][i] if left_kind == "var" else left_value
            right_id = operand_cols[right_value][i] if right_kind == "var" else right_value
            key = (index, left_id, right_id)
            verdict = get_verdict(key)
            if verdict is None:
                verdict = verdict_for(flt, left_kind, left_id, right_kind, right_id)
                verdicts[key] = verdict
            if not verdict:
                keep_row = False
                break
        if keep_row:
            append(i)
    if len(keep) == count:
        return None, count
    return kernels.from_ints(keep), len(keep)


def finish_columnar_pipeline(
    schema: Tuple[str, ...],
    cols: List[object],
    count: int,
    query: SelectQuery,
    counters: WorkCounters,
    space: QueryTermSpace,
    kernels,
) -> ExecutionResult:
    """The columnar epilogue: filters, projection to the bound columns,
    DISTINCT on id vectors, LIMIT by slicing, then **one batch decode** of
    the surviving projected ids into bindings.

    Shared by the unsharded and sharded columnar executors so late
    materialization (and result accounting) cannot drift between them.
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(counters)
    selection = None
    if query.filters and count:
        selection, count = _filter_selection(schema, cols, count, query.filters, space, kernels)

    names = query.projected_names()
    bound = [(name, schema.index(name)) for name in names if name in schema]
    projected = []
    for _name, position in bound:
        column = cols[position]
        projected.append(column if selection is None else kernels.take(column, selection))

    if query.distinct:
        distinct = kernels.distinct_selection(projected, count)
        projected = [kernels.take(column, distinct) for column in projected]
        count = len(distinct)
    if query.limit is not None and count > query.limit:
        projected = [column[: query.limit] for column in projected]
        count = query.limit

    lists = [kernels.tolist(column) for column in projected]
    id_to_term = space.decode_map(value for column in lists for value in column)
    bound_names = [name for name, _ in bound]
    bindings: List[Binding] = [
        {name: id_to_term[column[i]] for name, column in zip(bound_names, lists)}
        for i in range(count)
    ]
    counters.results_produced += len(bindings)
    return ExecutionResult(
        bindings=bindings,
        variables=tuple(names),
        counters=counters,
        store="relational",
    )


# ---------------------------------------------------------------------- #
# The executor
# ---------------------------------------------------------------------- #
class ColumnarExecutor:
    """Evaluates plans against a :class:`ColumnarTripleTable` with batch
    kernels; signature-compatible with
    :class:`~repro.relstore.executor.RelationalExecutor`."""

    def __init__(self, table: ColumnarTripleTable):
        if not isinstance(table, ColumnarTripleTable):
            raise QueryExecutionError("the columnar executor needs a ColumnarTripleTable")
        self._table = table

    def execute(
        self,
        query: SelectQuery,
        plan: RelationalPlan,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
        compiled: Optional[CompiledPlan] = None,
    ) -> ExecutionResult:
        table = self._table
        kernels = table.kernels
        dictionary = table.dictionary
        if compiled is None:
            compiled = compile_plan(plan, dictionary)
        counters = WorkCounters(queries_issued=1)
        space = QueryTermSpace(dictionary)
        schema: Tuple[str, ...] = ()
        cols: List[object] = []
        count = 1  # the pipeline seed: one zero-width row, exactly [()]
        schema, cols, count = join_columnar_tables(
            schema, cols, count, extra_tables, space, counters, tables_are_views, work_budget, kernels
        )

        for step in compiled.steps:
            # Guard before scanning: once the pipeline is empty, later steps
            # must charge zero work, exactly like the row engines.
            if count == 0:
                break
            names, block_cols, block_count = self._step_block(step, counters)
            schema, cols, count = join_block(
                schema, cols, count, names, block_cols, block_count, counters, kernels
            )
            check_work_budget(counters, work_budget)

        return finish_columnar_pipeline(schema, cols, count, query, counters, space, kernels)

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def _step_block(self, step: CompiledStep, counters: WorkCounters):
        """One plan step's pattern block, charging work like
        :meth:`RelationalExecutor._step_rows`: scans flow through the cached
        column blocks, point lookups ride the (few-row) secondary indexes and
        are transposed into columns."""
        table = self._table
        kernels = table.kernels
        matcher = step.matcher
        if step.access_path == "table_scan":
            return table.match_full(matcher, counters)

        if step.predicate_id is None:
            return _empty_block(matcher.var_names, kernels)

        if step.access_path == "index_subject":
            counters.index_lookups += 1
            if step.subject_id is None:
                return _empty_block(matcher.var_names, kernels)
            return table.match_index(matcher, step.predicate_id, 0, step.subject_id, counters)
        if step.access_path == "index_object":
            counters.index_lookups += 1
            if step.object_id is None:
                return _empty_block(matcher.var_names, kernels)
            return table.match_index(matcher, step.predicate_id, 2, step.object_id, counters)
        if step.access_path == "partition_scan":
            return table.match_partition(matcher, step.predicate_id, counters)
        raise QueryExecutionError(  # pragma: no cover - mirrors RelationalExecutor
            f"unknown access path {step.access_path!r}"
        )
