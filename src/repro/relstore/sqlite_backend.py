"""Optional SQLite persistence and SQL execution for the relational store.

The in-memory executor is the store's primary path because it provides
deterministic work accounting, but a real relational engine is useful for

* persisting a loaded knowledge graph between processes,
* cross-checking that the Python executor and a real SQL engine agree on
  query answers (integration tests do exactly this), and
* running the wall-clock benchmark variants.

The backend stores terms by their N-Triples surface form in a single
``triples(s, p, o)`` table with the usual three composite indexes.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.errors import StorageError
from repro.rdf.ntriples import _parse_term  # reuse the strict term grammar
from repro.rdf.terms import IRI, Literal, TermLike, Triple
from repro.sparql.ast import SelectQuery, compare_terms
from repro.relstore.sql_compiler import FILTER_FUNCTION_NAME, TRIPLE_TABLE_NAME, compile_select

__all__ = ["SQLiteBackend"]

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS {TRIPLE_TABLE_NAME} (
    s TEXT NOT NULL,
    p TEXT NOT NULL,
    o TEXT NOT NULL,
    PRIMARY KEY (s, p, o)
);
CREATE INDEX IF NOT EXISTS idx_triples_p ON {TRIPLE_TABLE_NAME} (p);
CREATE INDEX IF NOT EXISTS idx_triples_po ON {TRIPLE_TABLE_NAME} (p, o);
CREATE INDEX IF NOT EXISTS idx_triples_ps ON {TRIPLE_TABLE_NAME} (p, s);
"""


def _store_value(term: TermLike) -> str:
    """Surface form used in the SQLite table (IRIs bare, literals in N3)."""
    if isinstance(term, IRI):
        return term.value
    return term.n3()


def _load_value(value: str) -> TermLike:
    """Inverse of :func:`_store_value`."""
    if value.startswith('"') or value.startswith("_:"):
        term, _ = _parse_term(value, line_no=0)
        return term
    return IRI(value)


def _sql_filter(operator: str, left: str, right: str) -> int:
    """The FILTER comparison as a SQL function over stored surface forms.

    Decodes both operands back to terms and delegates to the same
    :func:`repro.sparql.ast.compare_terms` the Python engines use, so typed
    literals compare by value in SQL exactly as they do everywhere else.
    """
    return int(compare_terms(operator, _load_value(left), _load_value(right)))


class SQLiteBackend:
    """A thin SQLite wrapper exposing bulk load, insert, and SELECT execution."""

    #: Engine name on the RelationalBackend protocol surface.
    engine = "sqlite"

    def __init__(self, path: Union[str, Path] = ":memory:"):
        self._path = str(path)
        try:
            self._connection = sqlite3.connect(self._path)
        except sqlite3.Error as exc:  # pragma: no cover - environment dependent
            raise StorageError(f"could not open SQLite database at {self._path!r}: {exc}") from exc
        self._connection.executescript(_SCHEMA)
        self._connection.create_function(FILTER_FUNCTION_NAME, 3, _sql_filter, deterministic=True)
        self._connection.commit()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def insert_triples(self, triples: Iterable[Triple]) -> int:
        """Insert triples; duplicates are ignored.  Returns rows inserted."""
        rows = [(_store_value(t.subject), _store_value(t.predicate), _store_value(t.object)) for t in triples]
        if not rows:
            return 0
        cursor = self._connection.executemany(
            f"INSERT OR IGNORE INTO {TRIPLE_TABLE_NAME} (s, p, o) VALUES (?, ?, ?)", rows
        )
        self._connection.commit()
        return cursor.rowcount if cursor.rowcount >= 0 else len(rows)

    def delete_triple(self, triple: Triple) -> int:
        cursor = self._connection.execute(
            f"DELETE FROM {TRIPLE_TABLE_NAME} WHERE s = ? AND p = ? AND o = ?",
            (_store_value(triple.subject), _store_value(triple.predicate), _store_value(triple.object)),
        )
        self._connection.commit()
        return cursor.rowcount

    def count(self) -> int:
        row = self._connection.execute(f"SELECT COUNT(*) FROM {TRIPLE_TABLE_NAME}").fetchone()
        return int(row[0])

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def execute_select(self, query: SelectQuery) -> Tuple[Tuple[str, ...], List[Tuple[TermLike, ...]]]:
        """Run a compiled SELECT and decode the result rows back to terms."""
        compiled = compile_select(query)
        cursor = self._connection.execute(compiled.sql, compiled.parameters)
        rows = [tuple(_load_value(value) for value in row) for row in cursor.fetchall()]
        return compiled.columns, rows

    def execute_sql(self, sql: str, parameters: Sequence[str] = ()) -> List[tuple]:
        """Escape hatch for tests and tooling."""
        return list(self._connection.execute(sql, tuple(parameters)).fetchall())
