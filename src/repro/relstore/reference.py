"""The retained decode-per-row reference executor.

Before the ID-space engine (PR 3), the relational executor decoded every
column of every scanned row into term objects and joined dictionaries of
those terms.  That pipeline is preserved here, verbatim in behaviour, for two
reasons:

* it is the **differential oracle**: ``tests/test_differential_engine.py``
  pits the ID-space engine against it and asserts byte-identical result
  bindings and bit-identical logical :class:`~repro.cost.counters.WorkCounters`
  across every template family, unsharded and sharded;
* it is the **benchmark baseline**: ``benchmarks/bench_hotpath.py`` measures
  the real wall-clock speedup of late materialization against it and ratchets
  the result in ``BENCH_hotpath.json``.

Construct it via ``RelationalStore(engine="reference")``; it reuses the
term-space helpers still exported by :mod:`repro.relstore.executor`
(``bind_pattern_row``, ``join_pattern_rows``, ``finish_pipeline``, ...), so
the two engines share the filter/projection/DISTINCT/LIMIT semantics and the
work-charging points by construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.cost.counters import WorkCounters
from repro.errors import QueryExecutionError
from repro.execution import ExecutionResult, ResultTable
from repro.sparql.ast import Binding, SelectQuery

from repro.relstore.executor import (
    CompiledPlan,
    bind_pattern_row,
    check_work_budget,
    finish_pipeline,
    join_extra_tables,
    join_pattern_rows,
)
from repro.relstore.planner import PatternAccess, RelationalPlan
from repro.relstore.table import Row, TripleTable

__all__ = ["ReferenceExecutor"]


class ReferenceExecutor:
    """Evaluates plans by decoding every scanned row into term bindings."""

    def __init__(self, table: TripleTable):
        self._table = table

    # ------------------------------------------------------------------ #
    # Public entry point (signature-compatible with RelationalExecutor)
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        plan: RelationalPlan,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
        compiled: Optional[CompiledPlan] = None,
    ) -> ExecutionResult:
        """Run ``plan`` decode-per-row; ``compiled`` is accepted and ignored
        (the reference path re-resolves constants on every execution — that
        per-execution cost is part of what the benchmark measures)."""
        counters = WorkCounters(queries_issued=1)
        bindings: List[Binding] = [{}]
        bindings = join_extra_tables(bindings, extra_tables, counters, tables_are_views, work_budget)

        for step in plan:
            # Guard before scanning: once the pipeline is empty, later steps
            # must charge zero work, exactly like the ID-space executor.
            if not bindings:
                break
            pattern_rows = list(self._pattern_bindings(step, counters))
            bindings = join_pattern_rows(bindings, step.pattern, pattern_rows, counters)
            check_work_budget(counters, work_budget)

        return finish_pipeline(bindings, query, counters)

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def _pattern_bindings(self, step: PatternAccess, counters: WorkCounters) -> Iterator[Binding]:
        pattern = step.pattern
        dictionary = self._table.dictionary

        if step.access_path == "table_scan":
            rows: Iterable[Row] = self._table.scan()
            for row in rows:
                counters.rows_scanned += 1
                binding = bind_pattern_row(dictionary, pattern, row)
                if binding is not None:
                    yield binding
            return

        predicate_id = dictionary.lookup(pattern.predicate)
        if predicate_id is None:
            return

        if step.access_path == "index_subject":
            counters.index_lookups += 1
            subject_id = dictionary.lookup(pattern.subject)
            if subject_id is None:
                return
            rows = self._table.lookup_subject(predicate_id, subject_id)
        elif step.access_path == "index_object":
            counters.index_lookups += 1
            object_id = dictionary.lookup(pattern.object)
            if object_id is None:
                return
            rows = self._table.lookup_object(predicate_id, object_id)
        elif step.access_path == "partition_scan":
            rows = self._table.scan_predicate(predicate_id)
        else:  # pragma: no cover - defensive
            raise QueryExecutionError(f"unknown access path {step.access_path!r}")

        for row in rows:
            counters.rows_scanned += 1
            binding = bind_pattern_row(dictionary, pattern, row)
            if binding is not None:
                yield binding
