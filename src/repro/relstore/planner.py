"""Join planning for the relational executor.

The planner turns a basic graph pattern into an ordered list of
:class:`PatternAccess` steps.  Each step records the access path the executor
must use:

* ``index_subject`` / ``index_object`` — a point lookup on the
  (predicate, subject) or (predicate, object) index, available when that
  position is a constant.
* ``partition_scan`` — a range scan over one predicate partition (the common
  case for the paper's complex queries, whose patterns have a concrete
  predicate but variable subject and object).
* ``table_scan`` — a full scan, needed when the predicate itself is a
  variable.

Steps are ordered greedily by estimated cardinality so joins stay as small as
possible, mirroring what a relational optimizer with per-predicate statistics
would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence

from repro.rdf.terms import IRI, Variable
from repro.sparql.ast import SelectQuery, TriplePattern
from repro.sparql.algebra import order_patterns_greedily

from repro.relstore.stats import TableStatistics

__all__ = [
    "AccessPath",
    "KernelCostModel",
    "PatternAccess",
    "RelationalPlan",
    "ROW_KERNEL_COSTS",
    "BATCH_KERNEL_COSTS",
    "kernel_costs_for_engine",
    "plan_query",
]

AccessPath = Literal["index_subject", "index_object", "partition_scan", "table_scan"]


@dataclass(frozen=True)
class PatternAccess:
    """One step of the plan: a pattern plus its chosen access path."""

    pattern: TriplePattern
    access_path: AccessPath
    estimated_rows: int

    @property
    def uses_index(self) -> bool:
        return self.access_path in ("index_subject", "index_object")


@dataclass(frozen=True)
class RelationalPlan:
    """An ordered sequence of pattern accesses for one query."""

    steps: tuple[PatternAccess, ...]

    def estimated_work(self) -> float:
        """Sum of estimated rows over every step (a plan-quality heuristic)."""
        return float(sum(step.estimated_rows for step in self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)


@dataclass(frozen=True)
class KernelCostModel:
    """How one engine's kernels price a plan step.

    ``batch_setup`` is the per-step fixed cost (mask allocation, probe-table
    build) a batched kernel pays before touching a single row; row-at-a-time
    engines pay none.  It is deliberately a *uniform additive constant*:
    under :func:`~repro.sparql.algebra.order_patterns_greedily`'s estimate
    comparison a constant shared by every step preserves the relative order,
    so the bundled engines plan identically by construction — which the
    differential suite's byte-identical-bindings contract depends on.

    ``skew_guard``/``skew_blend`` control the point-lookup skew penalty.
    The average lookup size (``cardinality / distinct_keys``) underprices
    skewed predicates, where the hottest key holds most of the partition:
    greedy ordering then front-loads a step that is "selective" on average
    but explodes on exactly the keys a join actually probes (optimal
    row-wise, pessimal batch-wise — a batched kernel materializes the whole
    blowup at once).  When the worst-case lookup exceeds ``skew_guard``
    times the average, ``skew_blend`` of the gap is added to the estimate.
    The skew parameters are shared by every bundled model (only
    ``batch_setup`` differs), keeping the expected row counts — and hence
    the chosen join order — engine-invariant.
    """

    name: str
    batch_setup: float = 0.0
    skew_guard: float = 4.0
    skew_blend: float = 0.5

    def skew_penalty(
        self, statistics: TableStatistics, pattern: TriplePattern, access_path: AccessPath
    ) -> int:
        """Extra expected rows charged to a skew-prone point lookup."""
        average = statistics.estimate_index_rows(pattern, access_path)
        worst = statistics.estimate_index_rows_worst(pattern, access_path)
        if worst > self.skew_guard * max(1, average):
            return int(round(self.skew_blend * (worst - average)))
        return 0

    def step_cost(self, estimated_rows: int) -> float:
        """Ordering cost of one plan step under this engine's kernels."""
        return self.batch_setup + estimated_rows


#: Row-at-a-time engines (reference, idspace, the SQL baseline): no per-step
#: batch setup.
ROW_KERNEL_COSTS = KernelCostModel(name="row")

#: Batched engines (columnar): a fixed per-step kernel-dispatch cost.
BATCH_KERNEL_COSTS = KernelCostModel(name="batch", batch_setup=8.0)

_ENGINE_KERNEL_COSTS = {
    "reference": ROW_KERNEL_COSTS,
    "idspace": ROW_KERNEL_COSTS,
    "columnar": BATCH_KERNEL_COSTS,
    "sqlite": ROW_KERNEL_COSTS,
}


def kernel_costs_for_engine(engine: str) -> KernelCostModel:
    """The kernel cost model for an engine name (row costs for unknown ones)."""
    return _ENGINE_KERNEL_COSTS.get(engine, ROW_KERNEL_COSTS)


def _choose_access_path(pattern: TriplePattern) -> AccessPath:
    if not isinstance(pattern.predicate, IRI):
        return "table_scan"
    if not isinstance(pattern.subject, Variable):
        return "index_subject"
    if not isinstance(pattern.object, Variable):
        return "index_object"
    return "partition_scan"


def plan_query(
    query: SelectQuery,
    statistics: TableStatistics,
    pattern_order: Sequence[TriplePattern] | None = None,
    kernel_costs: KernelCostModel | None = None,
) -> RelationalPlan:
    """Build a left-deep plan for ``query`` using ``statistics``.

    ``pattern_order`` overrides the greedy ordering (used by the naive-order
    ablation benchmark).  ``kernel_costs`` prices steps for one engine's
    kernels (default: row-at-a-time); its skew parameters are shared across
    the bundled models, so the chosen order never depends on the engine.
    """
    costs = kernel_costs or ROW_KERNEL_COSTS

    def expected_rows(pattern: TriplePattern) -> int:
        """Per-pattern row estimate, priced the way the executors actually
        run the step: index paths touch the point-lookup row count from the
        per-predicate distinct-count statistics — plus the skew penalty when
        the hottest key dwarfs the average — not the whole partition."""
        access_path = _choose_access_path(pattern)
        estimated = statistics.estimate_pattern_rows(pattern)
        if access_path in ("index_subject", "index_object"):
            estimated = min(estimated, statistics.estimate_index_rows(pattern, access_path))
            estimated += costs.skew_penalty(statistics, pattern, access_path)
        return estimated

    def estimate(pattern: TriplePattern) -> float:
        return costs.step_cost(expected_rows(pattern))

    if pattern_order is None:
        ordered = order_patterns_greedily(
            query.patterns, cardinality=statistics.cardinalities(), estimate=estimate
        )
    else:
        ordered = list(pattern_order)

    steps: List[PatternAccess] = []
    for pattern in ordered:
        access_path = _choose_access_path(pattern)
        steps.append(
            PatternAccess(
                pattern=pattern, access_path=access_path, estimated_rows=expected_rows(pattern)
            )
        )
    return RelationalPlan(steps=tuple(steps))
