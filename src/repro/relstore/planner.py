"""Join planning for the relational executor.

The planner turns a basic graph pattern into an ordered list of
:class:`PatternAccess` steps.  Each step records the access path the executor
must use:

* ``index_subject`` / ``index_object`` — a point lookup on the
  (predicate, subject) or (predicate, object) index, available when that
  position is a constant.
* ``partition_scan`` — a range scan over one predicate partition (the common
  case for the paper's complex queries, whose patterns have a concrete
  predicate but variable subject and object).
* ``table_scan`` — a full scan, needed when the predicate itself is a
  variable.

Steps are ordered greedily by estimated cardinality so joins stay as small as
possible, mirroring what a relational optimizer with per-predicate statistics
would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence

from repro.rdf.terms import IRI, Variable
from repro.sparql.ast import SelectQuery, TriplePattern
from repro.sparql.algebra import order_patterns_greedily

from repro.relstore.stats import TableStatistics

__all__ = ["AccessPath", "PatternAccess", "RelationalPlan", "plan_query"]

AccessPath = Literal["index_subject", "index_object", "partition_scan", "table_scan"]


@dataclass(frozen=True)
class PatternAccess:
    """One step of the plan: a pattern plus its chosen access path."""

    pattern: TriplePattern
    access_path: AccessPath
    estimated_rows: int

    @property
    def uses_index(self) -> bool:
        return self.access_path in ("index_subject", "index_object")


@dataclass(frozen=True)
class RelationalPlan:
    """An ordered sequence of pattern accesses for one query."""

    steps: tuple[PatternAccess, ...]

    def estimated_work(self) -> float:
        """Sum of estimated rows over every step (a plan-quality heuristic)."""
        return float(sum(step.estimated_rows for step in self.steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)


def _choose_access_path(pattern: TriplePattern) -> AccessPath:
    if not isinstance(pattern.predicate, IRI):
        return "table_scan"
    if not isinstance(pattern.subject, Variable):
        return "index_subject"
    if not isinstance(pattern.object, Variable):
        return "index_object"
    return "partition_scan"


def plan_query(
    query: SelectQuery,
    statistics: TableStatistics,
    pattern_order: Sequence[TriplePattern] | None = None,
) -> RelationalPlan:
    """Build a left-deep plan for ``query`` using ``statistics``.

    ``pattern_order`` overrides the greedy ordering (used by the naive-order
    ablation benchmark).
    """
    def estimate(pattern: TriplePattern) -> int:
        """Per-pattern row estimate, priced the way the ID-space executor
        actually runs the step: index paths touch the point-lookup row count
        from the per-predicate distinct-count statistics, not the whole
        partition."""
        access_path = _choose_access_path(pattern)
        estimated = statistics.estimate_pattern_rows(pattern)
        if access_path in ("index_subject", "index_object"):
            estimated = min(estimated, statistics.estimate_index_rows(pattern, access_path))
        return estimated

    if pattern_order is None:
        ordered = order_patterns_greedily(
            query.patterns, cardinality=statistics.cardinalities(), estimate=estimate
        )
    else:
        ordered = list(pattern_order)

    steps: List[PatternAccess] = []
    for pattern in ordered:
        access_path = _choose_access_path(pattern)
        steps.append(
            PatternAccess(
                pattern=pattern, access_path=access_path, estimated_rows=estimate(pattern)
            )
        )
    return RelationalPlan(steps=tuple(steps))
