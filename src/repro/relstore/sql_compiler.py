"""Compilation of basic graph patterns into SQL over a triple table.

The primary execution path of the relational store is the Python executor in
:mod:`repro.relstore.executor` (it provides the deterministic work
accounting), but the store can also persist its triple table to SQLite and
answer the same queries through real SQL.  This module produces that SQL: a
self-join per triple pattern, which is exactly the query shape the paper
blames for the poor complex-query performance of relation-based stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import QueryExecutionError
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.ast import Filter, SelectQuery

__all__ = ["CompiledSQL", "compile_select", "FILTER_FUNCTION_NAME"]

TRIPLE_TABLE_NAME = "triples"

#: Name of the SQL function implementing the subset's FILTER semantics
#: (registered by :class:`~repro.relstore.sqlite_backend.SQLiteBackend`).
#: Raw SQL comparison over the stored surface forms would compare typed
#: literals *lexicographically* — ``"5"`` > ``"250"`` — and silently diverge
#: from the Python engines' typed comparison, so filters are evaluated by
#: the same :func:`repro.sparql.ast.compare_terms` the executors use.
FILTER_FUNCTION_NAME = "repro_filter"


@dataclass(frozen=True)
class CompiledSQL:
    """SQL text plus its positional parameters and output column names."""

    sql: str
    parameters: Tuple[str, ...]
    columns: Tuple[str, ...]


def _term_sql_value(term) -> str:
    """The string stored in the SQLite triple table for a concrete term."""
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, Literal):
        return term.n3()
    return str(term)


def compile_select(query: SelectQuery) -> CompiledSQL:
    """Compile a SELECT query to a self-join over the ``triples`` table.

    Each triple pattern becomes one aliased occurrence ``t0, t1, ...`` of the
    triple table; shared variables become equality predicates between
    aliases; constants become parameterised equality predicates.
    """
    if any(not isinstance(p.predicate, (IRI, Variable)) for p in query.patterns):
        raise QueryExecutionError("predicates must be IRIs or variables")

    aliases = [f"t{i}" for i in range(len(query.patterns))]
    where: List[str] = []
    parameters: List[str] = []
    # variable name -> first column expression that binds it
    variable_columns: Dict[str, str] = {}

    for alias, pattern in zip(aliases, query.patterns):
        for column, term in (("s", pattern.subject), ("p", pattern.predicate), ("o", pattern.object)):
            expression = f"{alias}.{column}"
            if isinstance(term, Variable):
                if term.name in variable_columns:
                    where.append(f"{variable_columns[term.name]} = {expression}")
                else:
                    variable_columns[term.name] = expression
            else:
                where.append(f"{expression} = ?")
                parameters.append(_term_sql_value(term))

    for flt in query.filters:
        clause, clause_params = _compile_filter(flt, variable_columns)
        where.append(clause)
        parameters.extend(clause_params)

    columns = query.projected_names()
    select_items = []
    for name in columns:
        column = variable_columns.get(name)
        if column is None:
            raise QueryExecutionError(f"projected variable ?{name} is not bound by the WHERE clause")
        select_items.append(f"{column} AS {name}")

    distinct = "DISTINCT " if query.distinct else ""
    from_clause = ", ".join(f"{TRIPLE_TABLE_NAME} AS {alias}" for alias in aliases)
    sql = f"SELECT {distinct}{', '.join(select_items)} FROM {from_clause}"
    if where:
        sql += " WHERE " + " AND ".join(where)
    if query.limit is not None:
        sql += f" LIMIT {query.limit}"
    return CompiledSQL(sql=sql, parameters=tuple(parameters), columns=tuple(columns))


def _compile_filter(flt: Filter, variable_columns: Dict[str, str]) -> Tuple[str, List[str]]:
    parts: List[str] = []
    parameters: List[str] = [flt.operator]
    for term in (flt.left, flt.right):
        if isinstance(term, Variable):
            column = variable_columns.get(term.name)
            if column is None:
                raise QueryExecutionError(f"FILTER uses unbound variable ?{term.name}")
            parts.append(column)
        else:
            parts.append("?")
            parameters.append(_term_sql_value(term))
    return f"{FILTER_FUNCTION_NAME}(?, {parts[0]}, {parts[1]}) = 1", parameters
