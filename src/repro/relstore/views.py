"""Materialized views over the relational store (the RDB-views baseline).

Section 6.2 of the paper compares the dual-store structure against
``RDB-views``: a relational store that, during each offline phase, creates
materialized views for the most frequent complex subqueries of the historical
workload (subject to the same storage budget the graph store gets).  This
module implements that baseline:

* :func:`canonical_pattern_key` — a variable-renaming-invariant key for a set
  of triple patterns, used to count how often a subquery shape recurs.
* :class:`MaterializedView` — one stored view: the canonical key, the defining
  patterns, and the materialized result rows.
* :class:`MaterializedViewManager` — frequency-based view selection under a
  row budget, plus matching of incoming queries against stored views.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.execution import ResultTable
from repro.rdf.terms import IRI, Literal, TermLike, Variable
from repro.sparql.ast import SelectQuery, TriplePattern

__all__ = ["canonical_pattern_key", "MaterializedView", "MaterializedViewManager"]


def canonical_pattern_key(patterns: Sequence[TriplePattern]) -> Tuple:
    """A hashable key identifying a pattern set up to variable renaming.

    Patterns are sorted by their textual form with variables blanked, then
    variables are renumbered in first-appearance order.  Two subqueries that
    differ only in variable names map to the same key; subqueries that differ
    in constants (the workload's *mutations*) map to different keys — which
    is precisely why frequency-selected views generalise poorly compared with
    predicate-level partitions.
    """

    def skeleton(pattern: TriplePattern) -> Tuple[str, str, str]:
        def show(term: TermLike) -> str:
            if isinstance(term, Variable):
                return "?"
            return term.n3()

        return (show(pattern.subject), show(pattern.predicate), show(pattern.object))

    ordered = sorted(patterns, key=skeleton)
    numbering: Dict[str, int] = {}

    def canonical_term(term: TermLike) -> str:
        if isinstance(term, Variable):
            if term.name not in numbering:
                numbering[term.name] = len(numbering)
            return f"?v{numbering[term.name]}"
        return term.n3()

    return tuple((canonical_term(p.subject), canonical_term(p.predicate), canonical_term(p.object)) for p in ordered)


@dataclass
class MaterializedView:
    """A materialized subquery result kept in the relational store."""

    key: Tuple
    patterns: Tuple[TriplePattern, ...]
    table: ResultTable
    hits: int = 0

    @property
    def row_count(self) -> int:
        return len(self.table)

    def predicates(self) -> frozenset[IRI]:
        return frozenset(p.predicate for p in self.patterns if isinstance(p.predicate, IRI))


@dataclass
class MaterializedViewManager:
    """Selects and serves materialized views under a row budget.

    Parameters
    ----------
    row_budget:
        Maximum total number of materialized rows across all views.  The
        experiments set this to the same fraction of the knowledge graph the
        graph store gets (``r_BG``), keeping the comparison fair as in the
        paper.
    """

    row_budget: int
    views: Dict[Tuple, MaterializedView] = field(default_factory=dict)
    _frequency: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------ #
    # Observation and selection
    # ------------------------------------------------------------------ #
    def observe(self, patterns: Sequence[TriplePattern]) -> None:
        """Record one occurrence of a (complex) subquery shape."""
        if patterns:
            self._frequency[canonical_pattern_key(patterns)] += 1

    def observe_query(self, query: SelectQuery, complex_patterns: Sequence[TriplePattern]) -> None:
        """Convenience wrapper used by the RDB-views variant."""
        self.observe(tuple(complex_patterns) if complex_patterns else query.patterns)

    def frequent_keys(self) -> List[Tuple]:
        """Canonical keys ordered by descending observation frequency."""
        return [key for key, _count in self._frequency.most_common()]

    def total_rows(self) -> int:
        return sum(view.row_count for view in self.views.values())

    def select_views(
        self,
        candidates: Dict[Tuple, Tuple[Tuple[TriplePattern, ...], ResultTable]],
    ) -> List[Tuple]:
        """Pick views by frequency until the row budget is exhausted.

        ``candidates`` maps canonical keys to (patterns, materialized rows)
        pairs that the store has computed during the offline phase.  Existing
        views not re-selected are dropped (the offline phase rebuilds the view
        set from scratch, as the paper's description implies).
        """
        self.views.clear()
        selected: List[Tuple] = []
        remaining = self.row_budget
        for key in self.frequent_keys():
            if key not in candidates:
                continue
            patterns, table = candidates[key]
            if len(table) > remaining:
                continue
            self.views[key] = MaterializedView(key=key, patterns=tuple(patterns), table=table)
            remaining -= len(table)
            selected.append(key)
        return selected

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def match(self, patterns: Sequence[TriplePattern]) -> Optional[MaterializedView]:
        """Return a stored view whose definition matches ``patterns`` exactly."""
        view = self.views.get(canonical_pattern_key(patterns))
        if view is not None:
            view.hits += 1
        return view

    def __len__(self) -> int:
        return len(self.views)

    def clear(self) -> None:
        self.views.clear()
        self._frequency.clear()
