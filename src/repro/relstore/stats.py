"""Table statistics and cardinality estimation for the relational store.

The planner uses these statistics to order joins and to decide between index
lookups and partition scans; the tuner uses them to estimate the benefit of
moving a partition without executing anything (``estimate_only`` mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.rdf.terms import IRI, Variable
from repro.sparql.ast import SelectQuery, TriplePattern

from repro.relstore.table import Row, TripleTable

__all__ = ["TableStatistics", "collect_statistics", "predicate_statistics"]


@dataclass(frozen=True)
class PredicateStatistics:
    """Per-predicate statistics used for selectivity estimation.

    ``max_subject_rows`` / ``max_object_rows`` record the *largest* point
    lookup the predicate can serve (the hottest key's row count).  They feed
    the planner's skew guard: under heavy skew the average lookup size wildly
    underprices the lookups that actually dominate a batched join.  A value
    of ``0`` means "not collected" (pre-skew snapshots); the ``worst_*``
    properties then fall back to the average-based estimate.
    """

    cardinality: int
    distinct_subjects: int
    distinct_objects: int
    max_subject_rows: int = 0
    max_object_rows: int = 0

    @property
    def avg_fanout(self) -> float:
        """Average objects per subject (≥ 1 when the predicate exists)."""
        if self.distinct_subjects == 0:
            return 0.0
        return self.cardinality / self.distinct_subjects

    @property
    def avg_fanin(self) -> float:
        """Average subjects per object."""
        if self.distinct_objects == 0:
            return 0.0
        return self.cardinality / self.distinct_objects

    @property
    def subject_lookup_rows(self) -> int:
        """Expected rows of one ``(predicate, subject)`` point lookup.

        The distinct-count estimate ``cardinality / distinct_subjects``,
        rounded and floored at one row — what an index-path plan step should
        be priced at instead of the whole partition's cardinality.
        """
        if self.cardinality == 0:
            return 0
        return max(1, int(round(self.avg_fanout)))

    @property
    def object_lookup_rows(self) -> int:
        """Expected rows of one ``(predicate, object)`` point lookup."""
        if self.cardinality == 0:
            return 0
        return max(1, int(round(self.avg_fanin)))

    @property
    def worst_subject_rows(self) -> int:
        """Largest ``(predicate, subject)`` lookup; average-based fallback
        when the worst case was never collected."""
        if self.cardinality == 0:
            return 0
        return self.max_subject_rows or self.subject_lookup_rows

    @property
    def worst_object_rows(self) -> int:
        """Largest ``(predicate, object)`` lookup, with the same fallback."""
        if self.cardinality == 0:
            return 0
        return self.max_object_rows or self.object_lookup_rows


@dataclass
class TableStatistics:
    """Statistics snapshot for a :class:`~repro.relstore.table.TripleTable`."""

    total_rows: int
    per_predicate: Dict[IRI, PredicateStatistics]

    def predicate_cardinality(self, predicate: IRI) -> int:
        stats = self.per_predicate.get(predicate)
        return stats.cardinality if stats else 0

    def cardinalities(self) -> Dict[IRI, int]:
        return {p: s.cardinality for p, s in self.per_predicate.items()}

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #
    def estimate_index_rows(self, pattern: TriplePattern, access_path: str) -> int:
        """Point-lookup estimate for an index-path plan step.

        Uses the per-predicate distinct counts: an ``index_subject`` step is
        expected to touch ``cardinality / distinct_subjects`` rows, an
        ``index_object`` step ``cardinality / distinct_objects``.  Returns 0
        for unknown predicates (the lookup cannot match anything).
        """
        if not isinstance(pattern.predicate, IRI):
            return 0
        stats = self.per_predicate.get(pattern.predicate)
        if stats is None:
            return 0
        if access_path == "index_subject":
            return stats.subject_lookup_rows
        return stats.object_lookup_rows

    def estimate_index_rows_worst(self, pattern: TriplePattern, access_path: str) -> int:
        """Worst-case row count of an index-path plan step (the hottest key).

        The planner's skew guard compares this against the average estimate:
        when the gap is large, pricing every lookup at the average picks
        plans that are optimal for typical keys and pessimal for the keys a
        batched join actually spends its time on.
        """
        if not isinstance(pattern.predicate, IRI):
            return 0
        stats = self.per_predicate.get(pattern.predicate)
        if stats is None:
            return 0
        if access_path == "index_subject":
            return stats.worst_subject_rows
        return stats.worst_object_rows

    def estimate_pattern_rows(self, pattern: TriplePattern) -> int:
        """Estimated number of rows matching a single triple pattern."""
        if isinstance(pattern.predicate, IRI):
            stats = self.per_predicate.get(pattern.predicate)
            if stats is None:
                return 0
            rows = stats.cardinality
            if not isinstance(pattern.subject, Variable):
                rows = max(1, int(round(stats.avg_fanout)))
            if not isinstance(pattern.object, Variable):
                rows = max(1, int(round(stats.avg_fanin)))
            return rows
        # Unbound predicate: every row is a candidate.
        rows = self.total_rows
        if not isinstance(pattern.subject, Variable) or not isinstance(pattern.object, Variable):
            rows = max(1, rows // max(1, len(self.per_predicate)))
        return rows

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """A JSON-serializable snapshot of the statistics.

        Recomputing statistics after a restore would yield identical values
        (they are a pure function of the rows), but persisting them lets a
        warm restart skip the recompute pass entirely — the planner is ready
        on the first served query.
        """
        return {
            "total_rows": self.total_rows,
            "per_predicate": {
                predicate.value: [
                    s.cardinality,
                    s.distinct_subjects,
                    s.distinct_objects,
                    s.max_subject_rows,
                    s.max_object_rows,
                ]
                for predicate, s in self.per_predicate.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TableStatistics":
        # Pre-skew snapshots carry 3-entry lists; the worst-case fields then
        # stay 0 and the ``worst_*`` properties fall back to the averages.
        return cls(
            total_rows=int(payload["total_rows"]),
            per_predicate={
                IRI(value): PredicateStatistics(
                    cardinality=int(entry[0]),
                    distinct_subjects=int(entry[1]),
                    distinct_objects=int(entry[2]),
                    max_subject_rows=int(entry[3]) if len(entry) > 3 else 0,
                    max_object_rows=int(entry[4]) if len(entry) > 4 else 0,
                )
                for value, entry in payload["per_predicate"].items()
            },
        )

    def estimate_query_work(self, query: SelectQuery) -> float:
        """Rough relational work units (rows touched) for a whole query.

        The estimate sums per-pattern scans and models each join as producing
        the smaller side's cardinality scaled by a fan-out factor.  It is
        deliberately simple — enough to rank plans and to let the tuner score
        partitions without execution.
        """
        pattern_rows = [self.estimate_pattern_rows(p) for p in query.patterns]
        if not pattern_rows:
            return 0.0
        scan_work = float(sum(pattern_rows))
        ordered = sorted(pattern_rows)
        intermediate = float(ordered[0])
        join_work = 0.0
        for rows in ordered[1:]:
            intermediate = min(intermediate * 1.2, float(intermediate + rows))
            join_work += intermediate
        return scan_work + join_work


def predicate_statistics(rows: Iterable[Row]) -> PredicateStatistics:
    """Accumulate one predicate's statistics from its (possibly sharded) rows."""
    subject_counts: Dict[int, int] = {}
    object_counts: Dict[int, int] = {}
    cardinality = 0
    for subject_id, _, object_id in rows:
        cardinality += 1
        subject_counts[subject_id] = subject_counts.get(subject_id, 0) + 1
        object_counts[object_id] = object_counts.get(object_id, 0) + 1
    return PredicateStatistics(
        cardinality=cardinality,
        distinct_subjects=len(subject_counts),
        distinct_objects=len(object_counts),
        max_subject_rows=max(subject_counts.values(), default=0),
        max_object_rows=max(object_counts.values(), default=0),
    )


def collect_statistics(table: TripleTable) -> TableStatistics:
    """Compute fresh statistics by scanning the table's partition index."""
    per_predicate: Dict[IRI, PredicateStatistics] = {}
    for predicate in table.predicates():
        predicate_id = table.dictionary.lookup(predicate)
        if predicate_id is None:
            continue
        per_predicate[predicate] = predicate_statistics(table.scan_predicate(predicate_id))
    return TableStatistics(total_rows=len(table), per_predicate=per_predicate)
