"""The relational triple table and its secondary indexes.

The relational store keeps the *entire* knowledge graph in a single
dictionary-encoded triple table (the classic ``(subject, predicate, object)``
layout the paper describes as the most commonly used relational layout),
plus secondary indexes:

* predicate → row ids (the per-partition index used for partition extraction
  and predicate-bound scans),
* (predicate, subject) → row ids,
* (predicate, object) → row ids.

Rows are identified by dense integer row ids; deletions leave tombstones so
row ids stay stable (the store compacts on demand).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import StorageError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import IRI, Triple

__all__ = ["TripleTable", "Row"]

#: One stored row: (subject_id, predicate_id, object_id)
Row = Tuple[int, int, int]


class TripleTable:
    """A dictionary-encoded triple table with secondary indexes."""

    def __init__(self, dictionary: TermDictionary | None = None):
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        self._rows: List[Optional[Row]] = []
        self._row_set: Set[Row] = set()
        self._by_predicate: Dict[int, List[int]] = defaultdict(list)
        self._by_predicate_subject: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._by_predicate_object: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._tombstones = 0

    # ------------------------------------------------------------------ #
    # Loading and mutation
    # ------------------------------------------------------------------ #
    def insert(self, triple: Triple) -> bool:
        """Insert a triple; return ``True`` when it was new."""
        return self.insert_row(self.dictionary.encode_triple(triple))

    def insert_row(self, row: Row) -> bool:
        """Insert an already-encoded row (sharded routing encodes first)."""
        if row in self._row_set:
            return False
        row_id = len(self._rows)
        self._rows.append(row)
        self._row_set.add(row)
        subject_id, predicate_id, object_id = row
        self._by_predicate[predicate_id].append(row_id)
        self._by_predicate_subject[(predicate_id, subject_id)].append(row_id)
        self._by_predicate_object[(predicate_id, object_id)].append(row_id)
        return True

    def insert_all(self, triples: Iterable[Triple]) -> int:
        return sum(1 for triple in triples if self.insert(triple))

    def delete(self, triple: Triple) -> bool:
        """Delete a triple; return ``True`` when it was present."""
        subject_id = self.dictionary.lookup(triple.subject)
        predicate_id = self.dictionary.lookup(triple.predicate)
        object_id = self.dictionary.lookup(triple.object)
        if subject_id is None or predicate_id is None or object_id is None:
            return False
        row = (subject_id, predicate_id, object_id)
        if row not in self._row_set:
            return False
        self._row_set.remove(row)
        # Tombstone the slot; index entries are filtered lazily on read.
        for row_id in self._by_predicate[predicate_id]:
            if self._rows[row_id] == row:
                self._rows[row_id] = None
                self._tombstones += 1
                break
        return True

    # ------------------------------------------------------------------ #
    # Size and statistics
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._row_set)

    @property
    def tombstone_count(self) -> int:
        return self._tombstones

    def predicates(self) -> List[IRI]:
        """All predicates present, decoded, sorted by IRI value."""
        out: List[IRI] = []
        for predicate_id, row_ids in self._by_predicate.items():
            if any(self._rows[r] is not None for r in row_ids):
                term = self.dictionary.decode(predicate_id)
                if isinstance(term, IRI):
                    out.append(term)
        return sorted(out, key=lambda p: p.value)

    def predicate_cardinality(self, predicate: IRI) -> int:
        predicate_id = self.dictionary.lookup(predicate)
        if predicate_id is None:
            return 0
        return self.live_row_count(predicate_id)

    def live_row_count(self, predicate_id: int) -> int:
        """Live rows of one predicate, counted from the index (no decoding)."""
        return sum(1 for r in self._by_predicate.get(predicate_id, ()) if self._rows[r] is not None)

    def cardinalities(self) -> Dict[IRI, int]:
        return {p: self.predicate_cardinality(p) for p in self.predicates()}

    # ------------------------------------------------------------------ #
    # Access paths (the physical operators call these)
    # ------------------------------------------------------------------ #
    def scan(self) -> Iterator[Row]:
        """Full table scan over live rows."""
        for row in self._rows:
            if row is not None:
                yield row

    def scan_predicate(self, predicate_id: int) -> Iterator[Row]:
        """Index range scan over one predicate partition."""
        for row_id in self._by_predicate.get(predicate_id, ()):
            row = self._rows[row_id]
            if row is not None:
                yield row

    def lookup_subject(self, predicate_id: int, subject_id: int) -> Iterator[Row]:
        """Point lookup on the (predicate, subject) index."""
        for row_id in self._by_predicate_subject.get((predicate_id, subject_id), ()):
            row = self._rows[row_id]
            if row is not None:
                yield row

    def lookup_object(self, predicate_id: int, object_id: int) -> Iterator[Row]:
        """Point lookup on the (predicate, object) index."""
        for row_id in self._by_predicate_object.get((predicate_id, object_id), ()):
            row = self._rows[row_id]
            if row is not None:
                yield row

    def contains(self, triple: Triple) -> bool:
        subject_id = self.dictionary.lookup(triple.subject)
        predicate_id = self.dictionary.lookup(triple.predicate)
        object_id = self.dictionary.lookup(triple.object)
        if subject_id is None or predicate_id is None or object_id is None:
            return False
        return (subject_id, predicate_id, object_id) in self._row_set

    # ------------------------------------------------------------------ #
    # Partition extraction (data shipped to the graph store)
    # ------------------------------------------------------------------ #
    def partition(self, predicate: IRI) -> List[Triple]:
        """Decode every live triple of one predicate."""
        predicate_id = self.dictionary.lookup(predicate)
        if predicate_id is None:
            return []
        return [self.dictionary.decode_triple(row) for row in self.scan_predicate(predicate_id)]

    def extract_predicate(self, predicate_id: int) -> List[Row]:
        """Remove and return every live row of one predicate.

        Used by the sharded store when a mega-predicate is promoted from
        predicate-sharding to subject-sharding and its rows must move to
        other shards.  Removed slots become tombstones; the secondary-index
        entries are filtered lazily on read like every other deletion.
        """
        removed: List[Row] = []
        for row_id in self._by_predicate.get(predicate_id, ()):
            row = self._rows[row_id]
            if row is not None:
                self._rows[row_id] = None
                self._row_set.remove(row)
                self._tombstones += 1
                removed.append(row)
        self._by_predicate.pop(predicate_id, None)
        return removed

    def compact(self) -> int:
        """Rebuild the table without tombstones; return rows reclaimed."""
        if self._tombstones == 0:
            return 0
        live = [row for row in self._rows if row is not None]
        reclaimed = self._tombstones
        self._rows = []
        self._row_set = set()
        self._by_predicate = defaultdict(list)
        self._by_predicate_subject = defaultdict(list)
        self._by_predicate_object = defaultdict(list)
        self._tombstones = 0
        for row in live:
            row_id = len(self._rows)
            self._rows.append(row)
            self._row_set.add(row)
            subject_id, predicate_id, object_id = row
            self._by_predicate[predicate_id].append(row_id)
            self._by_predicate_subject[(predicate_id, subject_id)].append(row_id)
            self._by_predicate_object[(predicate_id, object_id)].append(row_id)
        return reclaimed

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def dump_rows(self) -> List[int]:
        """Live rows flattened to ``[s0, p0, o0, s1, p1, o1, ...]``.

        Rows appear in row-id order with tombstones skipped — the compacted
        equivalent of the table.  Re-inserting them in this order rebuilds
        every secondary index with the same per-predicate entry order, so
        scans (and therefore query results and work counters) are identical
        to the snapshotted table's.
        """
        flat: List[int] = []
        extend = flat.extend
        for row in self._rows:
            if row is not None:
                extend(row)
        return flat

    def load_rows(self, flat: List[int]) -> int:
        """Insert rows previously produced by :meth:`dump_rows`; returns the
        number inserted.  The dictionary must already contain every id."""
        if len(flat) % 3:
            raise StorageError(f"flat row payload length {len(flat)} is not a multiple of 3")
        inserted = 0
        for offset in range(0, len(flat), 3):
            if self.insert_row((flat[offset], flat[offset + 1], flat[offset + 2])):
                inserted += 1
        return inserted

    def require_term_id(self, term) -> int:
        """Encode a concrete term, failing loudly if it was never stored."""
        term_id = self.dictionary.lookup(term)
        if term_id is None:
            raise StorageError(f"term {term!r} does not occur in the relational store")
        return term_id
