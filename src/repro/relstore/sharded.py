"""Sharded relational master copy with a scatter-gather executor.

:class:`ShardedRelationalStore` hash-partitions the triple table across N
in-process shards and answers queries by scattering per-shard sub-scans,
gathering their bindings, and joining centrally.  It is a drop-in
:class:`~repro.relstore.backend.RelationalBackend`, so the dual store, the
query processor, and the serving layer run unchanged on top of it.

**Shard key.** Rows are placed by predicate (a stable CRC32 hash of the
predicate term, modulo N), matching the paper's partition-per-predicate world
view: a partition transfer or a ``partition_scan`` touches exactly one shard.
A *mega-predicate* whose partition outgrows its fair share of a shard (the
configurable skew threshold) is *promoted* to subject-sharding: its rows are
re-placed by the subject term's stable hash so the partition's scans split
evenly across every shard.  Promotion is sticky — partitions never demote,
so placement stays stable for concurrent readers.

**Work accounting.** The scatter-gather executor reuses the single-table
executor's ID-space join/filter/projection helpers — shard probes match and
return *integer id tuples*, the coordinator joins them centrally in ID space,
and the surviving rows are decoded exactly once, post-merge (never per
shard) — and charges the *logical* work counters exactly as
:class:`~repro.relstore.store.RelationalStore` would:
shard sub-scans sum to the same ``rows_scanned``, the central hash join
produces the same ``rows_joined``, and one logical pattern access charges one
``index_lookups`` no matter how many shards were probed.  The differential
suite (``tests/test_differential_sharding.py``) asserts this identity for
N ∈ {1, 2, 4, 7}.  On top of the logical counters the executor tracks the
*physical* per-shard probe work, which prices two distinct quantities:

* **total work** — the sum over shards, identical to the unsharded store and
  unchanged by N (there is no free lunch, only parallelism);
* **parallel wall-clock** — per plan step the slowest shard probe, plus the
  coordinator's serial merge work (:meth:`CostModel.scatter_gather_seconds`).
  This is what :attr:`ExecutionResult.seconds` reports; the full breakdown
  rides along in :attr:`ExecutionResult.scatter`.

Shard probes are pure reads and may run on a thread pool
(:meth:`ShardedRelationalStore.attach_scatter_pool`; the serving layer
attaches one it owns).  The usual concurrency contract applies: no mutation
(``load``/``insert``/``delete``/promotion) may run concurrently with reads.

**LIMIT caveat.** Results are binding-identical to the unsharded store as a
*multiset*.  A ``LIMIT`` query without ``ORDER BY`` returns an arbitrary
subset under SPARQL semantics, and the two stores make different (each
deterministic) choices: the unsharded store truncates in insertion order,
the sharded store in shard-gather order.  Result *count* and work counters
still match exactly (``tests/test_differential_sharding.py`` pins both the
equality and this documented divergence).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cost.counters import WorkCounters
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.errors import QueryExecutionError
from repro.execution import ExecutionResult, ResultTable, ScatterGatherInfo
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import TripleSet
from repro.rdf.terms import IRI, Triple
from repro.sparql.ast import SelectQuery, TriplePattern

from repro.relstore.columnar import (
    ColumnarTripleTable,
    finish_columnar_pipeline,
    join_block,
    join_columnar_tables,
)
from repro.relstore.executor import (
    BoundPlanCache,
    CompiledPlan,
    CompiledStep,
    IdRow,
    QueryTermSpace,
    check_work_budget,
    compile_plan,
    finish_id_pipeline,
    join_id_extra_tables,
    join_id_pattern_rows,
    match_id_rows,
)
from repro.relstore.planner import RelationalPlan, kernel_costs_for_engine, plan_query
from repro.relstore.stats import PredicateStatistics, TableStatistics, predicate_statistics
from repro.relstore.store import capped_execution, estimate_relational_seconds
from repro.relstore.table import Row, TripleTable

__all__ = ["ShardingConfig", "ShardedRelationalStore", "ShardMetricsBoard", "SUBJECT_SHARDED"]

#: Placement sentinel: the predicate's rows are spread by subject hash.
SUBJECT_SHARDED = -1


@dataclass(frozen=True)
class ShardingConfig:
    """Placement tunables of the sharded store.

    Attributes
    ----------
    skew_threshold:
        A predicate is promoted to subject-sharding when its partition
        exceeds ``skew_threshold`` times the ideal per-shard row count
        (``total_rows / shards``).  Lower values shard more aggressively;
        benchmarks that want per-query speedup use values well below 1.
    min_subject_shard_rows:
        Absolute floor: partitions smaller than this never promote, no
        matter how skewed (splitting tiny partitions only buys overhead).
    """

    skew_threshold: float = 1.0
    min_subject_shard_rows: int = 128


#: One probe = one shard's share of one plan step: (shard index, rows
#: scanned, physical index lookups, priced seconds, matched id rows).
#: The probe itself is the single pricing point — the metrics board and the
#: parallel-time model both consume the same priced seconds.  Fragments are
#: integer tuples (the pattern's variable columns): shards never decode —
#: the coordinator joins in ID space and decodes once, post-merge.
_Probe = Tuple[int, int, int, float, List[IdRow]]


class ShardMetricsBoard:
    """Thread-safe per-shard serving metrics: probes, work, queue depth.

    The serving layer surfaces this through ``QueryService.shard_metrics()``.
    Latency figures are the cost model's modelled probe seconds (the same
    currency as every other latency in the repo), not wall-clock.
    """

    def __init__(self, shard_count: int):
        self._lock = threading.Lock()
        self._probes = [0] * shard_count
        self._rows_scanned = [0] * shard_count
        self._index_lookups = [0] * shard_count
        self._busy_seconds = [0.0] * shard_count
        self._max_probe_seconds = [0.0] * shard_count
        self._inflight = [0] * shard_count
        self._peak_inflight = [0] * shard_count

    def begin(self, shard: int) -> None:
        with self._lock:
            self._inflight[shard] += 1
            if self._inflight[shard] > self._peak_inflight[shard]:
                self._peak_inflight[shard] = self._inflight[shard]

    def finish(self, shard: int, rows_scanned: int, index_lookups: int, seconds: float) -> None:
        with self._lock:
            self._inflight[shard] -= 1
            self._probes[shard] += 1
            self._rows_scanned[shard] += rows_scanned
            self._index_lookups[shard] += index_lookups
            self._busy_seconds[shard] += seconds
            if seconds > self._max_probe_seconds[shard]:
                self._max_probe_seconds[shard] = seconds

    def snapshot(self) -> List[Dict[str, float]]:
        """One plain dict per shard, for logging and the serving layer."""
        with self._lock:
            out: List[Dict[str, float]] = []
            for shard in range(len(self._probes)):
                probes = self._probes[shard]
                out.append(
                    {
                        "shard": float(shard),
                        "probes": float(probes),
                        "rows_scanned": float(self._rows_scanned[shard]),
                        "index_lookups": float(self._index_lookups[shard]),
                        "busy_seconds": self._busy_seconds[shard],
                        "mean_probe_seconds": (
                            self._busy_seconds[shard] / probes if probes else 0.0
                        ),
                        "max_probe_seconds": self._max_probe_seconds[shard],
                        "queue_depth": float(self._inflight[shard]),
                        "peak_queue_depth": float(self._peak_inflight[shard]),
                    }
                )
            return out


class ShardedRelationalStore:
    """A work-accounted relational store over N hash-partitioned shards.

    Parameters
    ----------
    shards:
        Number of in-process shards (each its own :class:`TripleTable`; the
        term dictionary is shared so identifiers stay globally consistent).
    cost_model:
        Prices both the total-work and the parallel wall-clock view of every
        execution.
    config:
        Placement tunables (skew threshold for subject-sharding).
    engine:
        ``"idspace"`` (default) gathers integer id *tuples* from shard
        probes; ``"columnar"`` backs every shard with a
        :class:`~repro.relstore.columnar.ColumnarTripleTable` — probes
        return id *columns*, the coordinator concatenates them per column in
        shard order and joins with the batch kernels.  Either way the
        central merge decodes exactly once, post-merge, and the logical
        work counters are identical.
    """

    def __init__(
        self,
        shards: int = 4,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        config: Optional[ShardingConfig] = None,
        dictionary: Optional[TermDictionary] = None,
        engine: str = "idspace",
    ):
        if shards < 1:
            raise ValueError("a sharded store needs at least one shard")
        if engine not in ("idspace", "columnar"):
            raise ValueError(f"unknown sharded relational engine {engine!r}")
        self.shard_count = shards
        self.cost_model = cost_model
        self.config = config or ShardingConfig()
        self.engine = engine
        self.dictionary = dictionary if dictionary is not None else TermDictionary()
        table_cls = ColumnarTripleTable if engine == "columnar" else TripleTable
        self._tables = [table_cls(self.dictionary) for _ in range(shards)]
        #: predicate_id -> owner shard index, or SUBJECT_SHARDED.
        self._placement: Dict[int, int] = {}
        #: term_id -> stable hash shard (memoized CRC32 of the term's N3
        #: form, so placement is identical no matter the insertion order).
        self._term_shard: Dict[int, int] = {}
        self._statistics: Optional[TableStatistics] = None
        #: query → (plan, compiled plan) memo, invalidated by generation.
        self._bound_plans = BoundPlanCache()
        self._plan_generation = 0
        self.shard_metrics = ShardMetricsBoard(shards)
        self.total_insert_seconds = 0.0
        self._scatter_pool = None  # duck-typed: anything with .map(fn, iterable)
        self._scatter_pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Scatter pool (optional read-side parallelism)
    # ------------------------------------------------------------------ #
    def attach_scatter_pool(self, pool) -> bool:
        """Run shard probes on ``pool`` (``ThreadPoolExecutor``-like).

        Probes only read shard state, so any number of concurrent queries may
        scatter onto the same pool.  The pool must be dedicated to probes —
        submitting probes to a pool whose workers are themselves waiting on
        this store's queries would deadlock.

        Returns ``False`` (leaving the existing pool in place) when a
        *different* pool is already attached: with several serving layers on
        one store, the first attachment wins and later ones must not clobber
        it.  Every query on the store scatters via whatever pool is attached
        at probe time; if that pool's owner shuts it down mid-probe the
        executor falls back to serial probing, so a losing/closing service
        can never crash another's queries.
        """
        with self._scatter_pool_lock:
            if self._scatter_pool is not None and self._scatter_pool is not pool:
                return False
            self._scatter_pool = pool
            return True

    def detach_scatter_pool(self, pool) -> None:
        """Detach ``pool`` if it is the currently attached scatter pool."""
        with self._scatter_pool_lock:
            if self._scatter_pool is pool:
                self._scatter_pool = None

    @property
    def has_scatter_pool(self) -> bool:
        """Whether some serving layer currently provides a scatter pool."""
        return self._scatter_pool is not None

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def placement(self, predicate: IRI) -> Optional[int]:
        """The shard owning ``predicate``, ``SUBJECT_SHARDED``, or ``None``."""
        predicate_id = self.dictionary.lookup(predicate)
        if predicate_id is None:
            return None
        return self._placement.get(predicate_id)

    def subject_sharded_predicates(self) -> List[IRI]:
        """Predicates currently spread by subject hash (mega-predicates)."""
        out = []
        for predicate_id, placement in self._placement.items():
            if placement == SUBJECT_SHARDED:
                term = self.dictionary.decode(predicate_id)
                if isinstance(term, IRI):
                    out.append(term)
        return sorted(out, key=lambda p: p.value)

    def _shard_of_term(self, term_id: int) -> int:
        """Stable shard of one term: CRC32 of its N3 form modulo N.

        Memoized per term id; independent of dictionary id assignment, so
        *hash placement* never depends on insertion order.  (Note that
        *promotion* to subject-sharding is not order-independent: the skew
        limit is evaluated against the store size at mutation time and is
        sticky, so interleaving loads differently can promote different
        predicates — answers and total work are unaffected, only the
        parallel-time breakdown.)
        """
        shard = self._term_shard.get(term_id)
        if shard is None:
            term = self.dictionary.decode(term_id)
            shard = zlib.crc32(term.n3().encode("utf-8")) % self.shard_count
            self._term_shard[term_id] = shard
        return shard

    def _shard_for_row(self, row: Row) -> int:
        subject_id, predicate_id, _ = row
        placement = self._placement.get(predicate_id)
        if placement is None:
            placement = self._shard_of_term(predicate_id)
            self._placement[predicate_id] = placement
        if placement == SUBJECT_SHARDED:
            return self._shard_of_term(subject_id)
        return placement

    def _skew_limit(self) -> float:
        ideal = len(self) / self.shard_count
        return max(float(self.config.min_subject_shard_rows), self.config.skew_threshold * ideal)

    def _maybe_promote(self, predicate_id: int) -> None:
        """Promote a predicate to subject-sharding once it exceeds the skew
        threshold; its rows move from the owner shard to their subject
        shards.  One shard needs no balancing, and promotion never reverts."""
        if self.shard_count == 1:
            return
        owner = self._placement.get(predicate_id)
        if owner is None or owner == SUBJECT_SHARDED:
            return
        table = self._tables[owner]
        if table.live_row_count(predicate_id) <= self._skew_limit():
            return
        self._placement[predicate_id] = SUBJECT_SHARDED
        for row in table.extract_predicate(predicate_id):
            self._tables[self._shard_of_term(row[0])].insert_row(row)
        # Reclaim the mass-deleted slots at once: promotion runs under the
        # exclusive-mutation contract, and leaving the tombstones in place
        # would tax every later index lookup on the old owner shard.
        table.compact()

    # ------------------------------------------------------------------ #
    # Loading and updates
    # ------------------------------------------------------------------ #
    def load(self, triples: Iterable[Triple] | TripleSet) -> float:
        """Bulk-load triples; returns the modelled insert latency."""
        return self.insert(triples)

    def insert(self, triples: Iterable[Triple]) -> float:
        """Insert new knowledge, routing each row to its shard."""
        inserted = 0
        touched: set[int] = set()
        for triple in triples:
            row = self.dictionary.encode_triple(triple)
            shard = self._shard_for_row(row)
            if self._tables[shard].insert_row(row):
                inserted += 1
                touched.add(row[1])
        self._statistics = None
        self._plan_generation += 1
        for predicate_id in touched:
            self._maybe_promote(predicate_id)
        seconds = self.cost_model.relational_insert_seconds(inserted)
        self.total_insert_seconds += seconds
        return seconds

    def delete(self, triple: Triple) -> bool:
        predicate_id = self.dictionary.lookup(triple.predicate)
        subject_id = self.dictionary.lookup(triple.subject)
        if predicate_id is None or subject_id is None:
            return False
        placement = self._placement.get(predicate_id)
        if placement is None:
            return False
        shard = self._shard_of_term(subject_id) if placement == SUBJECT_SHARDED else placement
        removed = self._tables[shard].delete(triple)
        if removed:
            self._statistics = None
            self._plan_generation += 1
        return removed

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables)

    # ------------------------------------------------------------------ #
    # Metadata
    # ------------------------------------------------------------------ #
    def predicates(self) -> List[IRI]:
        merged: set[IRI] = set()
        for table in self._tables:
            merged.update(table.predicates())
        return sorted(merged, key=lambda p: p.value)

    def _tables_for_predicate(self, predicate_id: int) -> Sequence[TripleTable]:
        placement = self._placement.get(predicate_id)
        if placement is None:
            return ()
        if placement == SUBJECT_SHARDED:
            return self._tables
        return (self._tables[placement],)

    def partition(self, predicate: IRI) -> List[Triple]:
        """Every live triple of one predicate, gathered in shard order."""
        predicate_id = self.dictionary.lookup(predicate)
        if predicate_id is None:
            return []
        out: List[Triple] = []
        for table in self._tables_for_predicate(predicate_id):
            out.extend(
                self.dictionary.decode_triple(row) for row in table.scan_predicate(predicate_id)
            )
        return out

    def partition_size(self, predicate: IRI) -> int:
        predicate_id = self.dictionary.lookup(predicate)
        if predicate_id is None:
            return 0
        return sum(
            table.live_row_count(predicate_id)
            for table in self._tables_for_predicate(predicate_id)
        )

    def partition_sizes(self) -> Dict[IRI, int]:
        return {p: self.partition_size(p) for p in self.predicates()}

    def statistics(self) -> TableStatistics:
        """Global statistics across every shard.

        Content-identical to the unsharded store's statistics over the same
        data, so planning (join order, access paths) is identical too —
        sharding changes *where* rows live, never *how* queries are planned.
        """
        if self._statistics is None:
            per_predicate: Dict[IRI, PredicateStatistics] = {}
            for predicate in self.predicates():
                predicate_id = self.dictionary.lookup(predicate)
                if predicate_id is None:  # pragma: no cover - defensive
                    continue
                per_predicate[predicate] = predicate_statistics(
                    row
                    for table in self._tables_for_predicate(predicate_id)
                    for row in table.scan_predicate(predicate_id)
                )
            self._statistics = TableStatistics(total_rows=len(self), per_predicate=per_predicate)
        return self._statistics

    # ------------------------------------------------------------------ #
    # Query execution (scatter-gather)
    # ------------------------------------------------------------------ #
    def plan(
        self, query: SelectQuery, pattern_order: Sequence[TriplePattern] | None = None
    ) -> RelationalPlan:
        return plan_query(
            query,
            self.statistics(),
            pattern_order=pattern_order,
            kernel_costs=kernel_costs_for_engine(self.engine),
        )

    def _bound_plan(self, query: SelectQuery) -> Tuple[RelationalPlan, CompiledPlan]:
        """The plan with every step's constants resolved once per store
        generation — each shard probe then matches by ``int ==`` only."""
        return self._bound_plans.get_or_bind(
            query, self._plan_generation, lambda: self.plan(query), self.dictionary
        )

    def execute(
        self,
        query: SelectQuery,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
        pattern_order: Sequence[TriplePattern] | None = None,
    ) -> ExecutionResult:
        """Scatter-gather execution with unsharded-identical logical work.

        The coordinator gathers *id tuples* from the shard probes, joins
        them centrally in ID space, and decodes exactly once post-merge
        (in :func:`finish_id_pipeline`) — never per shard.

        Raises :class:`~repro.errors.WorkBudgetExceeded` at the same step
        boundaries, with the same partial work, as the unsharded store.
        """
        if self.engine == "columnar":
            return self._execute_columnar(
                query, work_budget, extra_tables, tables_are_views, pattern_order
            )
        if pattern_order is None:
            plan, compiled = self._bound_plan(query)
        else:
            plan = self.plan(query, pattern_order=pattern_order)
            compiled = compile_plan(plan, self.dictionary)
        counters = WorkCounters(queries_issued=1)
        step_probe_work: List[List[Tuple[int, float]]] = []
        shard_rows_scanned = 0
        space = QueryTermSpace(self.dictionary)
        schema: Tuple[str, ...] = ()
        rows: List[IdRow] = [()]
        schema, rows = join_id_extra_tables(
            schema, rows, extra_tables, space, counters, tables_are_views, work_budget
        )

        unprobed_index_lookups = 0
        for step in compiled.steps:
            # Guard before scattering: an empty pipeline charges zero work on
            # later steps, exactly like the unsharded executor.
            if not rows:
                break
            probes = self._scatter(step)
            pattern_rows: List[IdRow] = []
            step_work: List[Tuple[int, float]] = []
            for shard, scanned, _lookups, probe_seconds, fragment in probes:
                counters.rows_scanned += scanned
                shard_rows_scanned += scanned
                step_work.append((shard, probe_seconds))
                pattern_rows.extend(fragment)
            # One *logical* index lookup per index step, exactly like the
            # unsharded executor: charged once the predicate term is known,
            # no matter how many shards were physically probed (or whether
            # the bound term turned out to be absent).
            if self._is_index_step(step) and step.predicate_id is not None:
                counters.index_lookups += 1
                if not probes:
                    # No shard was touched (bound term absent), so the lookup
                    # cost must be priced centrally or the parallel price
                    # would drop work the serial price includes.
                    unprobed_index_lookups += 1
            step_probe_work.append(step_work)
            schema, rows = join_id_pattern_rows(schema, rows, step.matcher, pattern_rows, counters)
            check_work_budget(counters, work_budget)

        result = finish_id_pipeline(schema, rows, query, counters, space)
        self._price(result, step_probe_work, shard_rows_scanned, unprobed_index_lookups)
        return result

    def _execute_columnar(
        self,
        query: SelectQuery,
        work_budget: Optional[float],
        extra_tables: Optional[Iterable[ResultTable]],
        tables_are_views: bool,
        pattern_order: Sequence[TriplePattern] | None,
    ) -> ExecutionResult:
        """The columnar twin of :meth:`execute`: shard probes return id
        *columns*, the coordinator concatenates them per column in shard
        order (the exact order the id-tuple gather produces) and joins with
        the batch kernels; decode still happens exactly once, post-merge, in
        :func:`~repro.relstore.columnar.finish_columnar_pipeline`."""
        if pattern_order is None:
            plan, compiled = self._bound_plan(query)
        else:
            plan = self.plan(query, pattern_order=pattern_order)
            compiled = compile_plan(plan, self.dictionary)
        kernels = self._tables[0].kernels
        counters = WorkCounters(queries_issued=1)
        step_probe_work: List[List[Tuple[int, float]]] = []
        shard_rows_scanned = 0
        space = QueryTermSpace(self.dictionary)
        schema: Tuple[str, ...] = ()
        cols: List[object] = []
        count = 1  # the pipeline seed: one zero-width row
        schema, cols, count = join_columnar_tables(
            schema, cols, count, extra_tables, space, counters, tables_are_views, work_budget, kernels
        )

        unprobed_index_lookups = 0
        for step in compiled.steps:
            # Guard before scattering: an empty pipeline charges zero work on
            # later steps, exactly like the unsharded executors.
            if count == 0:
                break
            probes = self._run_probes(self._scatter_targets(step), self._make_column_probe(step))
            names = step.matcher.var_names
            parts: List[List[object]] = [[] for _ in names]
            total = 0
            step_work: List[Tuple[int, float]] = []
            for shard, scanned, _lookups, probe_seconds, fragment in probes:
                counters.rows_scanned += scanned
                shard_rows_scanned += scanned
                step_work.append((shard, probe_seconds))
                fragment_cols, fragment_count = fragment
                if fragment_count:
                    for bucket, column in zip(parts, fragment_cols):
                        bucket.append(column)
                    total += fragment_count
            block_cols = [
                kernels.concat(bucket) if bucket else kernels.empty() for bucket in parts
            ]
            # One *logical* index lookup per index step, exactly like the
            # unsharded executors (see :meth:`execute`).
            if self._is_index_step(step) and step.predicate_id is not None:
                counters.index_lookups += 1
                if not probes:
                    unprobed_index_lookups += 1
            step_probe_work.append(step_work)
            schema, cols, count = join_block(
                schema, cols, count, names, block_cols, total, counters, kernels
            )
            check_work_budget(counters, work_budget)

        result = finish_columnar_pipeline(schema, cols, count, query, counters, space, kernels)
        self._price(result, step_probe_work, shard_rows_scanned, unprobed_index_lookups)
        return result

    def execute_capped(
        self, query: SelectQuery, work_budget: float
    ) -> Tuple[Optional[ExecutionResult], float]:
        """Run with a cap; return ``(result_or_None, seconds)`` like the
        unsharded store (the counterfactual thread stopped at ``λ·c₁``)."""
        return capped_execution(self, query, work_budget)

    # ------------------------------------------------------------------ #
    # Estimation (no execution)
    # ------------------------------------------------------------------ #
    def estimate_query_seconds(self, query: SelectQuery) -> float:
        """Price a query from statistics only (used by the ideal/one-off tuners)."""
        return estimate_relational_seconds(self.statistics(), self.cost_model, query)

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def content_token(self) -> int:
        """A token that changes whenever the stored triples change (data
        mutations only — see :meth:`RelationalStore.content_token`)."""
        return self._plan_generation

    def snapshot_state(self) -> dict:
        """JSON-serializable store state: per-shard rows **and** the placement
        map, so a restore reproduces the exact physical layout — including
        sticky mega-predicate promotions, which are load-order dependent and
        could not be re-derived from the rows alone."""
        return {
            "kind": "sharded",
            "engine": self.engine,
            "shards": self.shard_count,
            "config": {
                "skew_threshold": self.config.skew_threshold,
                "min_subject_shard_rows": self.config.min_subject_shard_rows,
            },
            "placement": {str(pid): shard for pid, shard in self._placement.items()},
            "shard_rows": [table.dump_rows() for table in self._tables],
            "statistics": self.statistics().to_payload(),
            "total_insert_seconds": self.total_insert_seconds,
        }

    @classmethod
    def restore_state(
        cls,
        state: dict,
        dictionary: TermDictionary,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> "ShardedRelationalStore":
        """Rebuild a sharded store from :meth:`snapshot_state`.

        Placement is installed *before* the rows, and rows go straight to
        their recorded shard (no re-routing, no promotion checks): the
        restored store answers queries with bit-identical logical work and
        the same per-shard physical breakdown as the snapshotted one.
        """
        store = cls(
            shards=int(state["shards"]),
            cost_model=cost_model,
            config=ShardingConfig(
                skew_threshold=float(state["config"]["skew_threshold"]),
                min_subject_shard_rows=int(state["config"]["min_subject_shard_rows"]),
            ),
            dictionary=dictionary,
            # Pre-columnar snapshots carry no engine field.
            engine=state.get("engine", "idspace"),
        )
        store._placement = {int(pid): int(shard) for pid, shard in state["placement"].items()}
        for table, flat in zip(store._tables, state["shard_rows"]):
            table.load_rows(flat)
        store._statistics = TableStatistics.from_payload(state["statistics"])
        store.total_insert_seconds = float(state["total_insert_seconds"])
        return store

    # ------------------------------------------------------------------ #
    # Scatter internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_index_step(step: CompiledStep) -> bool:
        return step.access_path in ("index_subject", "index_object")

    def _scatter(self, step: CompiledStep) -> List[_Probe]:
        """Probe every shard the step's access path touches.

        The step's constants arrive pre-resolved on the :class:`CompiledStep`
        (one dictionary lookup per plan binding, not per execution).  The
        returned probes are ordered by shard index, so the gathered pattern
        rows are deterministic regardless of pool scheduling.  The *logical*
        index-lookup charge happens at the coordinator (one per step, like
        the unsharded executor); per-shard physical lookups are recorded in
        the probe tuples and the metrics board only.
        """
        return self._run_probes(self._scatter_targets(step), self._make_probe(step))

    def _scatter_targets(
        self, step: CompiledStep
    ) -> List[Tuple[int, str, Optional[tuple]]]:
        """The ``(shard, access, args)`` probe targets of one plan step —
        placement-derived and shared by the id-tuple and columnar gathers.
        Empty when the step cannot match (unknown predicate or bound term)."""
        if step.access_path == "table_scan":
            return [(shard, "table_scan", None) for shard in range(self.shard_count)]

        predicate_id = step.predicate_id
        if predicate_id is None:
            return []
        placement = self._placement.get(predicate_id)

        if step.access_path == "index_subject":
            subject_id = step.subject_id
            if subject_id is None or placement is None:
                return []
            if placement == SUBJECT_SHARDED:
                shards: Sequence[int] = (self._shard_of_term(subject_id),)
            else:
                shards = (placement,)
            return [(shard, "lookup_subject", (predicate_id, subject_id)) for shard in shards]
        if step.access_path == "index_object":
            object_id = step.object_id
            if object_id is None or placement is None:
                return []
            if placement == SUBJECT_SHARDED:
                shards = range(self.shard_count)
            else:
                shards = (placement,)
            return [(shard, "lookup_object", (predicate_id, object_id)) for shard in shards]
        if step.access_path == "partition_scan":
            if placement is None:
                return []
            if placement == SUBJECT_SHARDED:
                shards = range(self.shard_count)
            else:
                shards = (placement,)
            return [(shard, "scan_predicate", (predicate_id,)) for shard in shards]
        # pragma: no cover - defensive, mirrors RelationalExecutor
        raise QueryExecutionError(f"unknown access path {step.access_path!r}")

    def _run_probes(self, targets: List[Tuple[int, str, Optional[tuple]]], probe) -> list:
        pool = self._scatter_pool
        if pool is not None and len(targets) > 1:
            try:
                return list(pool.map(probe, targets))
            except RuntimeError as exc:
                # Only the submission-time "cannot schedule new futures after
                # shutdown" case falls back: the pool's owner closed it under
                # us.  Probes are pure reads, so serial re-probing is safe (at
                # worst the metrics board double-counts the probes the pool
                # managed to start).  Any other RuntimeError is a real probe
                # failure and must surface.
                if "shutdown" not in str(exc):
                    raise
        return [probe(target) for target in targets]

    def _make_probe(
        self, step: CompiledStep
    ) -> Callable[[Tuple[int, str, Optional[tuple]]], _Probe]:
        matcher = step.matcher
        tables = self._tables
        board = self.shard_metrics
        cost_model = self.cost_model

        def probe(target: Tuple[int, str, Optional[tuple]]) -> _Probe:
            shard, access, args = target
            table = tables[shard]
            board.begin(shard)
            scanned = 0
            fragment: List[IdRow] = []
            try:
                if access == "table_scan":
                    rows: Iterable[Row] = table.scan()
                    lookups = 0
                elif access == "scan_predicate":
                    rows = table.scan_predicate(*args)
                    lookups = 0
                elif access == "lookup_subject":
                    rows = table.lookup_subject(*args)
                    lookups = 1
                else:  # lookup_object
                    rows = table.lookup_object(*args)
                    lookups = 1
                # Pure ID-space matching: the probe never touches the term
                # dictionary, only compares ints (late materialization — the
                # coordinator decodes once, after the central merge).
                local = WorkCounters()
                fragment = match_id_rows(matcher, rows, local)
                scanned = local.rows_scanned
            finally:
                seconds = cost_model.relational_scan_seconds(scanned, lookups)
                board.finish(shard, scanned, lookups, seconds)
            return (shard, scanned, lookups, seconds, fragment)

        return probe

    def _make_column_probe(self, step: CompiledStep):
        """The columnar probe: scans match against the shard's cached column
        blocks; point lookups mask the same blocks down to the index key
        (order-identical to the secondary-index bucket walk, see
        :func:`~repro.relstore.columnar.match_index_block`).  Work charging,
        pricing, and the metrics board are identical to :meth:`_make_probe`
        — only the fragment payload changes, to ``(columns, count)``."""
        matcher = step.matcher
        tables = self._tables
        board = self.shard_metrics
        cost_model = self.cost_model

        def probe(target: Tuple[int, str, Optional[tuple]]):
            shard, access, args = target
            table = tables[shard]
            board.begin(shard)
            scanned = 0
            lookups = 0
            fragment: Tuple[List[object], int] = ([], 0)
            try:
                local = WorkCounters()
                if access == "table_scan":
                    _, fragment_cols, fragment_count = table.match_full(matcher, local)
                elif access == "scan_predicate":
                    _, fragment_cols, fragment_count = table.match_partition(
                        matcher, args[0], local
                    )
                else:
                    position = 0 if access == "lookup_subject" else 2
                    lookups = 1
                    _, fragment_cols, fragment_count = table.match_index(
                        matcher, args[0], position, args[1], local
                    )
                scanned = local.rows_scanned
                fragment = (list(fragment_cols), fragment_count)
            finally:
                seconds = cost_model.relational_scan_seconds(scanned, lookups)
                board.finish(shard, scanned, lookups, seconds)
            return (shard, scanned, lookups, seconds, fragment)

        return probe

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #
    def _price(
        self,
        result: ExecutionResult,
        step_probe_work: List[List[Tuple[int, float]]],
        shard_rows_scanned: int,
        unprobed_index_lookups: int = 0,
    ) -> None:
        cost_model = self.cost_model
        per_shard = [0.0] * self.shard_count
        step_costs: List[List[float]] = []
        for step_work in step_probe_work:
            for shard, cost in step_work:
                per_shard[shard] += cost
            step_costs.append([cost for _, cost in step_work])
        central = WorkCounters(
            rows_scanned=result.counters.rows_scanned - shard_rows_scanned,
            rows_joined=result.counters.rows_joined,
            index_lookups=unprobed_index_lookups,
            view_rows_scanned=result.counters.view_rows_scanned,
            results_produced=result.counters.results_produced,
        )
        parallel = cost_model.scatter_gather_seconds(step_costs, central)
        serial = cost_model.relational_query_seconds(result.counters)
        result.seconds = parallel
        result.scatter = ScatterGatherInfo(
            shard_seconds=tuple(per_shard),
            parallel_seconds=parallel,
            serial_seconds=serial,
        )
