"""The protocol every relational master-copy implementation satisfies.

The dual-store structure only needs a narrow surface from its relational
side: bulk loading, cheap inserts, partition extraction, statistics, and
work-accounted query execution.  :class:`RelationalBackend` names that
surface so :class:`~repro.core.dualstore.DualStore` and
:class:`~repro.core.processor.QueryProcessor` can run against either the
single-table :class:`~repro.relstore.store.RelationalStore` or the
scatter-gather :class:`~repro.relstore.sharded.ShardedRelationalStore`
without caring which one is underneath.

The protocol is ``runtime_checkable`` so tests can assert conformance, but
it is structural: any object with these members works.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.cost.model import CostModel
from repro.execution import ExecutionResult, ResultTable
from repro.rdf.graph import TripleSet
from repro.rdf.terms import IRI, Triple
from repro.relstore.planner import RelationalPlan
from repro.relstore.stats import TableStatistics
from repro.sparql.ast import SelectQuery, TriplePattern

__all__ = ["RelationalBackend"]


@runtime_checkable
class RelationalBackend(Protocol):
    """Structural interface of a relational master copy.

    Implementations: :class:`~repro.relstore.store.RelationalStore` (one
    triple table) and :class:`~repro.relstore.sharded.ShardedRelationalStore`
    (N hash-partitioned shards behind a scatter-gather executor).
    """

    cost_model: CostModel
    total_insert_seconds: float
    #: Execution-engine name (``"idspace"``, ``"columnar"``, ``"reference"``,
    #: ``"sqlite"``, …).  Engine selection rides the protocol so the serving
    #: layer can validate its configuration against what is actually
    #: underneath without knowing the concrete store class.
    engine: str

    # Loading and updates ---------------------------------------------- #
    def load(self, triples: Iterable[Triple] | TripleSet) -> float: ...

    def insert(self, triples: Iterable[Triple]) -> float: ...

    def delete(self, triple: Triple) -> bool: ...

    def __len__(self) -> int: ...

    # Metadata ---------------------------------------------------------- #
    def predicates(self) -> List[IRI]: ...

    def partition(self, predicate: IRI) -> List[Triple]: ...

    def partition_size(self, predicate: IRI) -> int: ...

    def partition_sizes(self) -> Dict[IRI, int]: ...

    def statistics(self) -> TableStatistics: ...

    # Query execution --------------------------------------------------- #
    def plan(
        self, query: SelectQuery, pattern_order: Sequence[TriplePattern] | None = None
    ) -> RelationalPlan: ...

    def execute(
        self,
        query: SelectQuery,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
        pattern_order: Sequence[TriplePattern] | None = None,
    ) -> ExecutionResult: ...

    def execute_capped(
        self, query: SelectQuery, work_budget: float
    ) -> Tuple[Optional[ExecutionResult], float]: ...

    # Estimation -------------------------------------------------------- #
    def estimate_query_seconds(self, query: SelectQuery) -> float: ...
