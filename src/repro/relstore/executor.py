"""Physical execution of relational plans with work accounting.

The executor evaluates a :class:`~repro.relstore.planner.RelationalPlan` with
a pipeline of hash joins over the triple table.  Every access path charges
work units to a :class:`~repro.cost.counters.WorkCounters` instance:

* ``partition_scan`` charges one ``rows_scanned`` per row in the predicate's
  partition — the cost that grows linearly with the knowledge graph, exactly
  the behaviour the paper's Table 1 shows for MySQL.
* ``index_subject`` / ``index_object`` charge one ``index_lookups`` plus one
  ``rows_scanned`` per matched row.
* every join step charges ``rows_joined`` for each intermediate tuple it
  produces.

A *work budget* may be supplied; when the accumulated work exceeds it the
executor aborts with :class:`~repro.errors.WorkBudgetExceeded`, which is how
the tuner's counterfactual scenario caps the relational run at ``λ·c₁``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.cost.counters import WorkCounters
from repro.errors import QueryExecutionError, WorkBudgetExceeded
from repro.execution import ExecutionResult, ResultTable
from repro.rdf.terms import TermLike, Variable
from repro.sparql.ast import Binding, Filter, SelectQuery, TriplePattern
from repro.sparql.algebra import merge_bindings

from repro.relstore.planner import PatternAccess, RelationalPlan
from repro.relstore.table import Row, TripleTable

__all__ = ["RelationalExecutor", "relational_work_units"]


def relational_work_units(counters: WorkCounters) -> float:
    """The scalar work measure compared against a work budget.

    Scans, joins, and index lookups all count; the weights loosely mirror the
    cost model so "budget = λ · c₁ converted to work units" behaves like the
    paper's timed thread cap.
    """
    return (
        counters.rows_scanned
        + 0.3 * counters.rows_joined
        + 0.2 * counters.index_lookups
        + 1.25 * counters.view_rows_scanned
    )


class RelationalExecutor:
    """Evaluates plans against a :class:`TripleTable`."""

    def __init__(self, table: TripleTable):
        self._table = table

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        plan: RelationalPlan,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
    ) -> ExecutionResult:
        """Run ``plan`` and return projected solutions plus work counters.

        ``extra_tables`` are temporary tables (migrated intermediate results)
        joined into the pipeline before the base-table patterns; the query
        processor uses this for Case 2 plans.  When ``tables_are_views`` is
        true their rows are charged as ``view_rows_scanned`` instead of
        ``rows_scanned`` (the RDB-views baseline).
        """
        counters = WorkCounters(queries_issued=1)
        bindings: List[Binding] = [{}]

        for table in extra_tables or ():
            bindings = self._join_result_table(bindings, table, counters, as_view=tables_are_views)
            self._check_budget(counters, work_budget)

        for step in plan:
            bindings = self._join_pattern(bindings, step, counters)
            self._check_budget(counters, work_budget)
            if not bindings:
                break

        bindings = self._apply_filters(bindings, query.filters)
        bindings = self._project(bindings, query)
        if query.distinct:
            bindings = _distinct(bindings, query.projected_names())
        if query.limit is not None:
            bindings = bindings[: query.limit]
        counters.results_produced += len(bindings)

        return ExecutionResult(
            bindings=bindings,
            variables=tuple(query.projected_names()),
            counters=counters,
            store="relational",
        )

    # ------------------------------------------------------------------ #
    # Join steps
    # ------------------------------------------------------------------ #
    def _join_pattern(
        self,
        bindings: List[Binding],
        step: PatternAccess,
        counters: WorkCounters,
    ) -> List[Binding]:
        if not bindings:
            return []
        pattern = step.pattern
        pattern_rows = list(self._pattern_bindings(step, counters))
        if not pattern_rows:
            return []

        # Hash join on the shared variables (if any); cartesian product otherwise.
        if bindings == [{}]:
            counters.rows_joined += len(pattern_rows)
            return pattern_rows

        shared = _shared_variable_names(bindings[0], pattern)
        output: List[Binding] = []
        if shared:
            index: Dict[tuple, List[Binding]] = {}
            for row_binding in pattern_rows:
                key = tuple(row_binding[name] for name in shared)
                index.setdefault(key, []).append(row_binding)
            for binding in bindings:
                key = tuple(binding[name] for name in shared)
                for row_binding in index.get(key, ()):
                    merged = merge_bindings(binding, row_binding)
                    if merged is not None:
                        output.append(merged)
        else:
            for binding in bindings:
                for row_binding in pattern_rows:
                    merged = merge_bindings(binding, row_binding)
                    if merged is not None:
                        output.append(merged)
        counters.rows_joined += len(output)
        return output

    def _join_result_table(
        self,
        bindings: List[Binding],
        table: ResultTable,
        counters: WorkCounters,
        as_view: bool = False,
    ) -> List[Binding]:
        if not bindings:
            return []
        if as_view:
            counters.view_rows_scanned += len(table)
        else:
            counters.rows_scanned += len(table)
        table_bindings = table.to_bindings()
        if bindings == [{}]:
            counters.rows_joined += len(table_bindings)
            return table_bindings
        output: List[Binding] = []
        for binding in bindings:
            for table_binding in table_bindings:
                merged = merge_bindings(binding, table_binding)
                if merged is not None:
                    output.append(merged)
        counters.rows_joined += len(output)
        return output

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def _pattern_bindings(self, step: PatternAccess, counters: WorkCounters) -> Iterator[Binding]:
        pattern = step.pattern
        dictionary = self._table.dictionary

        if step.access_path == "table_scan":
            rows: Iterable[Row] = self._table.scan()
            for row in rows:
                counters.rows_scanned += 1
                binding = self._bind_row(pattern, row)
                if binding is not None:
                    yield binding
            return

        predicate_id = dictionary.lookup(pattern.predicate)
        if predicate_id is None:
            return

        if step.access_path == "index_subject":
            counters.index_lookups += 1
            subject_id = dictionary.lookup(pattern.subject)
            if subject_id is None:
                return
            rows = self._table.lookup_subject(predicate_id, subject_id)
        elif step.access_path == "index_object":
            counters.index_lookups += 1
            object_id = dictionary.lookup(pattern.object)
            if object_id is None:
                return
            rows = self._table.lookup_object(predicate_id, object_id)
        elif step.access_path == "partition_scan":
            rows = self._table.scan_predicate(predicate_id)
        else:  # pragma: no cover - defensive
            raise QueryExecutionError(f"unknown access path {step.access_path!r}")

        for row in rows:
            counters.rows_scanned += 1
            binding = self._bind_row(pattern, row)
            if binding is not None:
                yield binding

    def _bind_row(self, pattern: TriplePattern, row: Row) -> Optional[Binding]:
        """Match one stored row against a pattern, producing a binding."""
        dictionary = self._table.dictionary
        binding: Binding = {}
        for term, term_id in zip((pattern.subject, pattern.predicate, pattern.object), row):
            if isinstance(term, Variable):
                value = dictionary.decode(term_id)
                existing = binding.get(term.name)
                if existing is not None and existing != value:
                    return None
                binding[term.name] = value
            else:
                stored: TermLike = dictionary.decode(term_id)
                if stored != term:
                    return None
        return binding

    # ------------------------------------------------------------------ #
    # Post-processing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _apply_filters(bindings: List[Binding], filters: tuple[Filter, ...]) -> List[Binding]:
        if not filters:
            return bindings
        return [b for b in bindings if all(f.evaluate(b) for f in filters)]

    @staticmethod
    def _project(bindings: List[Binding], query: SelectQuery) -> List[Binding]:
        names = query.projected_names()
        projected: List[Binding] = []
        for binding in bindings:
            projected.append({name: binding[name] for name in names if name in binding})
        return projected

    @staticmethod
    def _check_budget(counters: WorkCounters, work_budget: Optional[float]) -> None:
        if work_budget is None:
            return
        spent = relational_work_units(counters)
        if spent > work_budget:
            raise WorkBudgetExceeded(
                f"relational execution exceeded its work budget ({spent:.0f} > {work_budget:.0f})",
                partial_work=spent,
            )


def _shared_variable_names(binding: Binding, pattern: TriplePattern) -> List[str]:
    return sorted(set(binding) & pattern.variable_names())


def _distinct(bindings: List[Binding], names: tuple[str, ...]) -> List[Binding]:
    seen: set[tuple] = set()
    unique: List[Binding] = []
    for binding in bindings:
        key = tuple(binding.get(name) for name in names)
        if key not in seen:
            seen.add(key)
            unique.append(binding)
    return unique
