"""Physical execution of relational plans with work accounting.

The executor evaluates a :class:`~repro.relstore.planner.RelationalPlan` with
a pipeline of hash joins over the triple table.  Every access path charges
work units to a :class:`~repro.cost.counters.WorkCounters` instance:

* ``partition_scan`` charges one ``rows_scanned`` per row in the predicate's
  partition — the cost that grows linearly with the knowledge graph, exactly
  the behaviour the paper's Table 1 shows for MySQL.
* ``index_subject`` / ``index_object`` charge one ``index_lookups`` plus one
  ``rows_scanned`` per matched row.
* every join step charges ``rows_joined`` for each intermediate tuple it
  produces.

A *work budget* may be supplied; when the accumulated work exceeds it the
executor aborts with :class:`~repro.errors.WorkBudgetExceeded`, which is how
the tuner's counterfactual scenario caps the relational run at ``λ·c₁``.

The join, filter, projection, and budget helpers live at module level so that
the sharded scatter-gather executor (:mod:`repro.relstore.sharded`) evaluates
queries with the *same* code and therefore charges identical logical work —
the property the differential sharding suite asserts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.cost.counters import WorkCounters
from repro.errors import QueryExecutionError, WorkBudgetExceeded
from repro.execution import ExecutionResult, ResultTable
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import TermLike, Variable
from repro.sparql.ast import Binding, Filter, SelectQuery, TriplePattern
from repro.sparql.algebra import merge_bindings

from repro.relstore.planner import PatternAccess, RelationalPlan
from repro.relstore.table import Row, TripleTable

__all__ = [
    "RelationalExecutor",
    "relational_work_units",
    "bind_pattern_row",
    "join_pattern_rows",
    "join_result_table",
    "join_extra_tables",
    "finish_pipeline",
    "apply_filters",
    "project_bindings",
    "distinct_bindings",
    "check_work_budget",
]


def relational_work_units(counters: WorkCounters) -> float:
    """The scalar work measure compared against a work budget.

    Scans, joins, and index lookups all count; the weights loosely mirror the
    cost model so "budget = λ · c₁ converted to work units" behaves like the
    paper's timed thread cap.
    """
    return (
        counters.rows_scanned
        + 0.3 * counters.rows_joined
        + 0.2 * counters.index_lookups
        + 1.25 * counters.view_rows_scanned
    )


# ---------------------------------------------------------------------- #
# Shared evaluation primitives (used by both the single-table executor
# and the sharded scatter-gather executor)
# ---------------------------------------------------------------------- #
def bind_pattern_row(
    dictionary: TermDictionary, pattern: TriplePattern, row: Row
) -> Optional[Binding]:
    """Match one stored row against a pattern, producing a binding."""
    binding: Binding = {}
    for term, term_id in zip((pattern.subject, pattern.predicate, pattern.object), row):
        if isinstance(term, Variable):
            value = dictionary.decode(term_id)
            existing = binding.get(term.name)
            if existing is not None and existing != value:
                return None
            binding[term.name] = value
        else:
            stored: TermLike = dictionary.decode(term_id)
            if stored != term:
                return None
    return binding


def join_pattern_rows(
    bindings: List[Binding],
    pattern: TriplePattern,
    pattern_rows: List[Binding],
    counters: WorkCounters,
) -> List[Binding]:
    """Hash-join already-materialized pattern bindings into the pipeline.

    Charges ``rows_joined`` per produced tuple, exactly like the inline join
    of :class:`RelationalExecutor`.
    """
    if not bindings or not pattern_rows:
        return []

    # Hash join on the shared variables (if any); cartesian product otherwise.
    if bindings == [{}]:
        counters.rows_joined += len(pattern_rows)
        return pattern_rows

    shared = _shared_variable_names(bindings[0], pattern)
    output: List[Binding] = []
    if shared:
        index: Dict[tuple, List[Binding]] = {}
        for row_binding in pattern_rows:
            key = tuple(row_binding[name] for name in shared)
            index.setdefault(key, []).append(row_binding)
        for binding in bindings:
            key = tuple(binding[name] for name in shared)
            for row_binding in index.get(key, ()):
                merged = merge_bindings(binding, row_binding)
                if merged is not None:
                    output.append(merged)
    else:
        for binding in bindings:
            for row_binding in pattern_rows:
                merged = merge_bindings(binding, row_binding)
                if merged is not None:
                    output.append(merged)
    counters.rows_joined += len(output)
    return output


def join_result_table(
    bindings: List[Binding],
    table: ResultTable,
    counters: WorkCounters,
    as_view: bool = False,
) -> List[Binding]:
    """Join a migrated intermediate-result table into the pipeline."""
    if not bindings:
        return []
    if as_view:
        counters.view_rows_scanned += len(table)
    else:
        counters.rows_scanned += len(table)
    table_bindings = table.to_bindings()
    if bindings == [{}]:
        counters.rows_joined += len(table_bindings)
        return table_bindings
    output: List[Binding] = []
    for binding in bindings:
        for table_binding in table_bindings:
            merged = merge_bindings(binding, table_binding)
            if merged is not None:
                output.append(merged)
    counters.rows_joined += len(output)
    return output


def apply_filters(bindings: List[Binding], filters: tuple[Filter, ...]) -> List[Binding]:
    if not filters:
        return bindings
    return [b for b in bindings if all(f.evaluate(b) for f in filters)]


def project_bindings(bindings: List[Binding], query: SelectQuery) -> List[Binding]:
    names = query.projected_names()
    projected: List[Binding] = []
    for binding in bindings:
        projected.append({name: binding[name] for name in names if name in binding})
    return projected


def distinct_bindings(bindings: List[Binding], names: tuple[str, ...]) -> List[Binding]:
    seen: set[tuple] = set()
    unique: List[Binding] = []
    for binding in bindings:
        key = tuple(binding.get(name) for name in names)
        if key not in seen:
            seen.add(key)
            unique.append(binding)
    return unique


def check_work_budget(counters: WorkCounters, work_budget: Optional[float]) -> None:
    if work_budget is None:
        return
    spent = relational_work_units(counters)
    if spent > work_budget:
        raise WorkBudgetExceeded(
            f"relational execution exceeded its work budget ({spent:.0f} > {work_budget:.0f})",
            partial_work=spent,
        )


def join_extra_tables(
    bindings: List[Binding],
    extra_tables: Optional[Iterable[ResultTable]],
    counters: WorkCounters,
    tables_are_views: bool,
    work_budget: Optional[float],
) -> List[Binding]:
    """The pipeline prologue: join migrated tables, budget-checked per table."""
    for table in extra_tables or ():
        bindings = join_result_table(bindings, table, counters, as_view=tables_are_views)
        check_work_budget(counters, work_budget)
    return bindings


def finish_pipeline(
    bindings: List[Binding], query: SelectQuery, counters: WorkCounters
) -> ExecutionResult:
    """The pipeline epilogue: filters, projection, DISTINCT, LIMIT, result
    accounting — shared so the sharded and unsharded stores cannot diverge."""
    bindings = apply_filters(bindings, query.filters)
    bindings = project_bindings(bindings, query)
    if query.distinct:
        bindings = distinct_bindings(bindings, query.projected_names())
    if query.limit is not None:
        bindings = bindings[: query.limit]
    counters.results_produced += len(bindings)
    return ExecutionResult(
        bindings=bindings,
        variables=tuple(query.projected_names()),
        counters=counters,
        store="relational",
    )


class RelationalExecutor:
    """Evaluates plans against a :class:`TripleTable`."""

    def __init__(self, table: TripleTable):
        self._table = table

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        plan: RelationalPlan,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
    ) -> ExecutionResult:
        """Run ``plan`` and return projected solutions plus work counters.

        ``extra_tables`` are temporary tables (migrated intermediate results)
        joined into the pipeline before the base-table patterns; the query
        processor uses this for Case 2 plans.  When ``tables_are_views`` is
        true their rows are charged as ``view_rows_scanned`` instead of
        ``rows_scanned`` (the RDB-views baseline).
        """
        counters = WorkCounters(queries_issued=1)
        bindings: List[Binding] = [{}]
        bindings = join_extra_tables(bindings, extra_tables, counters, tables_are_views, work_budget)

        for step in plan:
            # Guard before scanning: once the pipeline is empty (e.g. a Case 2
            # plan whose migrated table had no rows), later steps must charge
            # zero work, exactly like the pre-refactor executor.
            if not bindings:
                break
            pattern_rows = list(self._pattern_bindings(step, counters))
            bindings = join_pattern_rows(bindings, step.pattern, pattern_rows, counters)
            check_work_budget(counters, work_budget)

        return finish_pipeline(bindings, query, counters)

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def _pattern_bindings(self, step: PatternAccess, counters: WorkCounters) -> Iterator[Binding]:
        pattern = step.pattern
        dictionary = self._table.dictionary

        if step.access_path == "table_scan":
            rows: Iterable[Row] = self._table.scan()
            for row in rows:
                counters.rows_scanned += 1
                binding = bind_pattern_row(dictionary, pattern, row)
                if binding is not None:
                    yield binding
            return

        predicate_id = dictionary.lookup(pattern.predicate)
        if predicate_id is None:
            return

        if step.access_path == "index_subject":
            counters.index_lookups += 1
            subject_id = dictionary.lookup(pattern.subject)
            if subject_id is None:
                return
            rows = self._table.lookup_subject(predicate_id, subject_id)
        elif step.access_path == "index_object":
            counters.index_lookups += 1
            object_id = dictionary.lookup(pattern.object)
            if object_id is None:
                return
            rows = self._table.lookup_object(predicate_id, object_id)
        elif step.access_path == "partition_scan":
            rows = self._table.scan_predicate(predicate_id)
        else:  # pragma: no cover - defensive
            raise QueryExecutionError(f"unknown access path {step.access_path!r}")

        for row in rows:
            counters.rows_scanned += 1
            binding = bind_pattern_row(dictionary, pattern, row)
            if binding is not None:
                yield binding


def _shared_variable_names(binding: Binding, pattern: TriplePattern) -> List[str]:
    return sorted(set(binding) & pattern.variable_names())
