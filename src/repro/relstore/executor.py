"""Physical execution of relational plans with work accounting.

The executor evaluates a :class:`~repro.relstore.planner.RelationalPlan` with
a pipeline of hash joins over the triple table.  Since PR 3 the pipeline is
an **ID-space engine** (late materialization, the standard column-store
discipline):

* pattern access matches stored rows by comparing *integer term ids* — the
  constants of every plan step are looked up in the dictionary once, when the
  plan is compiled, never per row;
* the pipeline state is a flat schema (a tuple of variable names) plus a list
  of **integer tuples**; hash joins, DISTINCT, and ORDER-BY-free LIMIT all
  operate on those int tuples (int hashing is several times cheaper than
  hashing frozen term dataclasses);
* filters get an ID-space fast path — equal ids prove term equality, so
  ``=``/``<=``/``>=`` succeed and ``!=``/``<``/``>`` fail without decoding —
  and fall back to decoded value comparison only when the ids differ (two
  distinct terms, e.g. ``"5"^^xsd:integer`` vs ``"5.0"^^xsd:double``, may
  still compare equal by value);
* projection performs **one batch decode**
  (:meth:`~repro.rdf.dictionary.TermDictionary.decode_many`) of only the rows
  that survived joins, filters, DISTINCT, and LIMIT.

Work accounting is unchanged *by construction*: ``rows_scanned`` is charged
per row yielded by an access path, ``rows_joined`` per tuple a join produces,
``index_lookups`` at the same two points as before, and ``results_produced``
after LIMIT — so the logical :class:`~repro.cost.counters.WorkCounters` (and
therefore every modelled TTI/work number) are bit-identical to the retained
decode-per-row reference executor (:mod:`repro.relstore.reference`), which
the differential suite in ``tests/test_differential_engine.py`` asserts.

A *work budget* may be supplied; when the accumulated work exceeds it the
executor aborts with :class:`~repro.errors.WorkBudgetExceeded`, which is how
the tuner's counterfactual scenario caps the relational run at ``λ·c₁``.

The join, filter, projection, and budget helpers live at module level so that
the sharded scatter-gather executor (:mod:`repro.relstore.sharded`) evaluates
queries with the *same* code and therefore charges identical logical work —
the property the differential sharding suite asserts.  The historical
term-space helpers (``bind_pattern_row``, ``join_pattern_rows``, ...) keep
their signatures; they now serve the reference executor and any external
callers, while the ``*_id_*`` family is the hot path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cost.counters import WorkCounters
from repro.errors import QueryExecutionError, WorkBudgetExceeded
from repro.resilience.deadline import current_deadline, probed_rows
from repro.execution import ExecutionResult, ResultTable
from repro.rdf.dictionary import TermDictionary
from repro.rdf.terms import XSD_DOUBLE, XSD_INTEGER, Literal, TermLike, Variable
from repro.sparql.ast import Binding, Filter, SelectQuery, TriplePattern
from repro.sparql.algebra import merge_bindings

from repro.relstore.planner import RelationalPlan
from repro.relstore.table import Row, TripleTable

__all__ = [
    "RelationalExecutor",
    "relational_work_units",
    # ID-space engine
    "IdRow",
    "QueryTermSpace",
    "CompiledPattern",
    "CompiledStep",
    "CompiledPlan",
    "compile_pattern",
    "compile_plan",
    "BoundPlanCache",
    "match_id_rows",
    "join_id_pattern_rows",
    "join_id_result_table",
    "join_id_extra_tables",
    "finish_id_pipeline",
    # Term-space helpers (retained for the reference executor)
    "bind_pattern_row",
    "join_pattern_rows",
    "join_result_table",
    "join_extra_tables",
    "finish_pipeline",
    "apply_filters",
    "project_bindings",
    "distinct_bindings",
    "check_work_budget",
]

#: One pipeline row: the bound term ids, positionally aligned with the
#: pipeline's variable schema.
IdRow = Tuple[int, ...]


def relational_work_units(counters: WorkCounters) -> float:
    """The scalar work measure compared against a work budget.

    Scans, joins, and index lookups all count; the weights loosely mirror the
    cost model so "budget = λ · c₁ converted to work units" behaves like the
    paper's timed thread cap.
    """
    return (
        counters.rows_scanned
        + 0.3 * counters.rows_joined
        + 0.2 * counters.index_lookups
        + 1.25 * counters.view_rows_scanned
    )


# ---------------------------------------------------------------------- #
# ID space: an execution-scoped view of the term dictionary
# ---------------------------------------------------------------------- #
class QueryTermSpace:
    """The shared dictionary plus per-execution *local* ids (negative).

    Stored rows only ever carry dictionary ids (``>= 0``).  Migrated
    intermediate-result tables, however, may contain terms the relational
    dictionary has never seen; those get negative ids scoped to this one
    execution, so the whole pipeline — including extra-table joins — runs on
    integers.  Id equality is term equality in both ranges (each range is a
    bijection and they never overlap), which is the invariant every ID-space
    operator relies on.
    """

    __slots__ = ("_dictionary", "_local_ids", "_local_terms")

    def __init__(self, dictionary: TermDictionary):
        self._dictionary = dictionary
        self._local_ids: Dict[TermLike, int] = {}
        self._local_terms: List[TermLike] = []

    def encode(self, term: TermLike) -> int:
        """The id for ``term``: its dictionary id, or a local negative id."""
        term_id = self._dictionary.lookup(term)
        if term_id is not None:
            return term_id
        local = self._local_ids.get(term)
        if local is None:
            self._local_terms.append(term)
            local = -len(self._local_terms)
            self._local_ids[term] = local
        return local

    def decode(self, term_id: int) -> TermLike:
        if term_id >= 0:
            return self._dictionary.decode(term_id)
        return self._local_terms[-term_id - 1]

    def decode_map(self, term_ids: Iterable[int]) -> Dict[int, TermLike]:
        """Batch-decode distinct ids into an id → term map (one pass each)."""
        distinct = set(term_ids)
        stored = [i for i in distinct if i >= 0]
        mapping: Dict[int, TermLike] = dict(zip(stored, self._dictionary.decode_many(stored)))
        for i in distinct:
            if i < 0:
                mapping[i] = self._local_terms[-i - 1]
        return mapping


# ---------------------------------------------------------------------- #
# Pattern compilation (constants resolved once, not per row)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompiledPattern:
    """A triple pattern lowered to integer row matching.

    ``var_names``/``var_positions`` name the pattern's distinct variables and
    the row position of each one's first occurrence (S, P, O order);
    ``const_checks`` are ``(position, required_id)`` pairs for the resolved
    constants; ``dup_checks`` are ``(position, first_position)`` pairs for
    repeated variables; ``matchable`` is ``False`` when some constant is not
    in the dictionary at all — no *stored* row can ever match then (stored
    rows only contain dictionary ids), though scans still charge their rows.
    """

    var_names: Tuple[str, ...]
    var_positions: Tuple[int, ...]
    const_checks: Tuple[Tuple[int, int], ...]
    dup_checks: Tuple[Tuple[int, int], ...]
    matchable: bool


def compile_pattern(pattern: TriplePattern, dictionary: TermDictionary) -> CompiledPattern:
    """Resolve a pattern's constants to ids and lay out its variable slots."""
    first_seen: Dict[str, int] = {}
    var_names: List[str] = []
    var_positions: List[int] = []
    const_checks: List[Tuple[int, int]] = []
    dup_checks: List[Tuple[int, int]] = []
    matchable = True
    for position, term in enumerate((pattern.subject, pattern.predicate, pattern.object)):
        if isinstance(term, Variable):
            first = first_seen.get(term.name)
            if first is None:
                first_seen[term.name] = position
                var_names.append(term.name)
                var_positions.append(position)
            else:
                dup_checks.append((position, first))
        else:
            term_id = dictionary.lookup(term)
            if term_id is None:
                matchable = False
            else:
                const_checks.append((position, term_id))
    return CompiledPattern(
        var_names=tuple(var_names),
        var_positions=tuple(var_positions),
        const_checks=tuple(const_checks),
        dup_checks=tuple(dup_checks),
        matchable=matchable,
    )


@dataclass(frozen=True)
class CompiledStep:
    """One plan step with its access-path constants pre-resolved."""

    access_path: str
    pattern: TriplePattern
    matcher: CompiledPattern
    predicate_id: Optional[int]
    subject_id: Optional[int]
    object_id: Optional[int]


@dataclass(frozen=True)
class CompiledPlan:
    """A :class:`RelationalPlan` bound to one dictionary state."""

    steps: Tuple[CompiledStep, ...]

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)


def compile_plan(plan: RelationalPlan, dictionary: TermDictionary) -> CompiledPlan:
    """Resolve every step's constants once (per plan, not per execution)."""
    steps: List[CompiledStep] = []
    lookup = dictionary.lookup
    for step in plan:
        pattern = step.pattern
        predicate_id = lookup(pattern.predicate) if pattern.has_concrete_predicate else None
        subject_id = (
            lookup(pattern.subject) if not isinstance(pattern.subject, Variable) else None
        )
        object_id = lookup(pattern.object) if not isinstance(pattern.object, Variable) else None
        steps.append(
            CompiledStep(
                access_path=step.access_path,
                pattern=pattern,
                matcher=compile_pattern(pattern, dictionary),
                predicate_id=predicate_id,
                subject_id=subject_id,
                object_id=object_id,
            )
        )
    return CompiledPlan(steps=tuple(steps))


class BoundPlanCache:
    """Thread-safe LRU memo of ``query → (plan, compiled plan)``.

    Entries are tagged with the owning store's *plan generation*, bumped on
    every mutation (new terms may appear, statistics may shift, so both the
    ordering and the resolved constant ids can change).  A hit therefore
    skips planning *and* re-resolving pattern constants — the plan is bound
    to a store generation exactly once, no matter how many times the serving
    layer replays the (already plan-cached) query.
    """

    def __init__(self, capacity: int = 512):
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[object, Tuple[int, RelationalPlan, CompiledPlan]]" = OrderedDict()

    def get(self, key: object, generation: int) -> Optional[Tuple[RelationalPlan, CompiledPlan]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != generation:
                return None
            self._entries.move_to_end(key)
            return entry[1], entry[2]

    def put(self, key: object, generation: int, plan: RelationalPlan, compiled: CompiledPlan) -> None:
        with self._lock:
            self._entries[key] = (generation, plan, compiled)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def get_or_bind(
        self,
        key: object,
        generation: int,
        planner,
        dictionary: TermDictionary,
    ) -> Tuple[RelationalPlan, CompiledPlan]:
        """The whole binding protocol: memo hit, or plan + compile + store.

        ``planner`` is the owning store's zero-argument plan builder; it (and
        the compile) runs outside the lock — concurrent readers may bind the
        same query twice, which is benign (last write wins, both are valid
        for this generation).  Shared by both stores so the protocol cannot
        drift between them.
        """
        cached = self.get(key, generation)
        if cached is not None:
            return cached
        plan = planner()
        compiled = compile_plan(plan, dictionary)
        self.put(key, generation, plan, compiled)
        return plan, compiled

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------- #
# ID-space evaluation primitives (shared with the sharded executor)
# ---------------------------------------------------------------------- #
def match_id_rows(
    matcher: CompiledPattern, rows: Iterable[Row], counters: WorkCounters
) -> List[IdRow]:
    """Match stored rows against a compiled pattern, entirely on ids.

    Charges one ``rows_scanned`` per row inspected (matching or not), exactly
    like the decode-per-row reference path; the output rows carry only the
    pattern's variable columns, in ``matcher.var_names`` order.

    Cancellation: with an ambient deadline active the scan probes it every
    :data:`~repro.resilience.deadline.PROBE_STRIDE` rows (the probe never
    touches the counters, so surviving runs stay bit-identical).
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(counters)
        rows = probed_rows(rows, deadline, counters)
    out: List[IdRow] = []
    append = out.append
    scanned = 0
    if not matcher.matchable:
        # An unresolved constant matches no stored row, but a scan-based
        # access path still reads (and charges) every row it visits.
        for _ in rows:
            scanned += 1
        counters.rows_scanned += scanned
        return out

    const_checks = matcher.const_checks
    dup_checks = matcher.dup_checks
    positions = matcher.var_positions
    arity = len(positions)
    if not dup_checks:
        if len(const_checks) == 1 and arity == 2:
            # The workhorse shape: partition scan of `?s <p> ?o`.
            (c0, k0) = const_checks[0]
            p0, p1 = positions
            for row in rows:
                scanned += 1
                if row[c0] == k0:
                    append((row[p0], row[p1]))
            counters.rows_scanned += scanned
            return out
        if len(const_checks) == 2 and arity == 1:
            # Index point lookup: `?s <p> <o>` / `<s> <p> ?o`.
            (c0, k0), (c1, k1) = const_checks
            p0 = positions[0]
            for row in rows:
                scanned += 1
                if row[c0] == k0 and row[c1] == k1:
                    append((row[p0],))
            counters.rows_scanned += scanned
            return out
        if not const_checks and arity == 3:
            # Full table scan with three fresh variables: positions are
            # (0, 1, 2), so the stored row *is* the output row.
            for row in rows:
                scanned += 1
                append(row)
            counters.rows_scanned += scanned
            return out

    for row in rows:
        scanned += 1
        matched = True
        for position, required in const_checks:
            if row[position] != required:
                matched = False
                break
        if matched:
            for position, first in dup_checks:
                if row[position] != row[first]:
                    matched = False
                    break
            if matched:
                append(tuple(row[p] for p in positions))
    counters.rows_scanned += scanned
    return out


def join_id_pattern_rows(
    schema: Tuple[str, ...],
    rows: List[IdRow],
    matcher: CompiledPattern,
    pattern_rows: List[IdRow],
    counters: WorkCounters,
) -> Tuple[Tuple[str, ...], List[IdRow]]:
    """Hash-join matched pattern rows into the pipeline, on integer keys.

    Returns the extended ``(schema, rows)``.  Charges ``rows_joined`` per
    produced tuple, at the same point as the reference join.

    Cancellation: with an ambient deadline active the probe loops check it
    periodically — and the cartesian branch (the output-explosion path, where
    a single step can produce |rows| x |pattern_rows| tuples) checks once per
    outer row, so even a fan-out of millions stays responsive.
    """
    deadline = current_deadline()
    var_names = matcher.var_names
    new_names = tuple(n for n in var_names if n not in schema)
    if not rows or not pattern_rows:
        return schema + new_names, []

    if not schema and len(rows) == 1:
        # The pipeline seed [()]: the pattern rows become the pipeline.
        counters.rows_joined += len(pattern_rows)
        return tuple(var_names), pattern_rows

    if deadline is not None:
        deadline.check(counters)
    out: List[IdRow] = []
    append = out.append
    shared = [n for n in var_names if n in schema]
    if shared:
        pattern_index = {name: i for i, name in enumerate(var_names)}
        new_positions = tuple(pattern_index[n] for n in new_names)
        key_positions = tuple(pattern_index[n] for n in shared)
        probe_positions = tuple(schema.index(n) for n in shared)
        index: Dict[object, List[IdRow]] = {}
        if len(shared) == 1:
            # Scalar int keys: the dominant case, cheapest possible hashing.
            # The new-column tuples are unrolled by arity (a pattern adds at
            # most two fresh variables), which keeps the per-row cost to
            # plain indexing instead of a generator-driven tuple build.
            kp = key_positions[0]
            pp = probe_positions[0]
            if len(new_positions) == 1:
                n0 = new_positions[0]
                for prow in pattern_rows:
                    key = prow[kp]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = bucket = []
                    bucket.append((prow[n0],))
            elif len(new_positions) == 2:
                n0, n1 = new_positions
                for prow in pattern_rows:
                    key = prow[kp]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = bucket = []
                    bucket.append((prow[n0], prow[n1]))
            else:
                for prow in pattern_rows:
                    key = prow[kp]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = bucket = []
                    bucket.append(tuple(prow[i] for i in new_positions))
            get = index.get
            probe_rows = rows if deadline is None else probed_rows(rows, deadline, counters)
            for row in probe_rows:
                bucket = get(row[pp])
                if bucket is not None:
                    for extra in bucket:
                        append(row + extra)
        else:
            for prow in pattern_rows:
                key = tuple(prow[i] for i in key_positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = bucket = []
                bucket.append(tuple(prow[i] for i in new_positions))
            get = index.get
            probe_rows = rows if deadline is None else probed_rows(rows, deadline, counters)
            for row in probe_rows:
                bucket = get(tuple(row[i] for i in probe_positions))
                if bucket is not None:
                    for extra in bucket:
                        append(row + extra)
    elif deadline is None:
        for row in rows:
            for prow in pattern_rows:
                append(row + prow)
    else:
        for row in rows:
            deadline.check(counters)
            for prow in pattern_rows:
                append(row + prow)
    counters.rows_joined += len(out)
    return schema + new_names, out


def join_id_result_table(
    schema: Tuple[str, ...],
    rows: List[IdRow],
    table: ResultTable,
    space: QueryTermSpace,
    counters: WorkCounters,
    as_view: bool = False,
) -> Tuple[Tuple[str, ...], List[IdRow]]:
    """Join a migrated intermediate-result table into the ID pipeline.

    The table's terms are encoded once (unknown terms get execution-local
    ids) and the join runs on a hash index over the shared variables — the
    nested-loop cartesian merge the term-space path historically used only
    remains for genuinely disjoint tables.
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(counters)
    table_vars = table.variables
    new_names = tuple(n for n in table_vars if n not in schema)
    if not rows:
        return schema + new_names, []
    if as_view:
        counters.view_rows_scanned += len(table)
    else:
        counters.rows_scanned += len(table)

    id_rows: List[IdRow] = table.encoded_rows(space.encode)

    out: List[IdRow] = []
    append = out.append
    shared = [n for n in table_vars if n in schema]
    if shared:
        table_index = {name: i for i, name in enumerate(table_vars)}
        new_positions = tuple(table_index[n] for n in new_names)
        key_positions = tuple(table_index[n] for n in shared)
        probe_positions = tuple(schema.index(n) for n in shared)
        index: Dict[Tuple[int, ...], List[IdRow]] = {}
        for trow in id_rows:
            key = tuple(trow[i] for i in key_positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = bucket = []
            bucket.append(tuple(trow[i] for i in new_positions))
        get = index.get
        probe_rows = rows if deadline is None else probed_rows(rows, deadline, counters)
        for row in probe_rows:
            bucket = get(tuple(row[i] for i in probe_positions))
            if bucket is not None:
                for extra in bucket:
                    append(row + extra)
    elif deadline is None:
        for row in rows:
            for trow in id_rows:
                append(row + trow)
    else:
        for row in rows:
            deadline.check(counters)
            for trow in id_rows:
                append(row + trow)
    counters.rows_joined += len(out)
    return schema + new_names, out


def join_id_extra_tables(
    schema: Tuple[str, ...],
    rows: List[IdRow],
    extra_tables: Optional[Iterable[ResultTable]],
    space: QueryTermSpace,
    counters: WorkCounters,
    tables_are_views: bool,
    work_budget: Optional[float],
) -> Tuple[Tuple[str, ...], List[IdRow]]:
    """The pipeline prologue: join migrated tables, budget-checked per table."""
    for table in extra_tables or ():
        schema, rows = join_id_result_table(
            schema, rows, table, space, counters, as_view=tables_are_views
        )
        check_work_budget(counters, work_budget)
    return schema, rows


# -- ID-space filters --------------------------------------------------- #
#: Filter operand lowered to ID space: ('var', schema position, name),
#: ('const', id, term), or ('unbound', 0, None).
_FilterSide = Tuple[str, int, Optional[TermLike]]

#: Operators that hold between a term and itself.
_TRUE_ON_EQUAL = frozenset({"=", "<=", ">="})

#: Literal datatypes whose ``to_python`` conversion can misbehave — a double
#: may be NaN (fails even reflexive comparison) and a malformed integer
#: lexical raises ``ValueError`` — so equal ids settle nothing for them and
#: the filter must delegate to :meth:`Filter.evaluate` like the reference.
_UNSAFE_EQUAL_DATATYPES = frozenset({XSD_DOUBLE, XSD_INTEGER})


def _compile_filter_side(
    term: TermLike, schema: Tuple[str, ...], space: QueryTermSpace
) -> _FilterSide:
    if isinstance(term, Variable):
        if term.name in schema:
            return ("var", schema.index(term.name), None)
        return ("unbound", 0, None)
    return ("const", space.encode(term), term)


def _apply_id_filters(
    schema: Tuple[str, ...],
    rows: List[IdRow],
    filters: Tuple[Filter, ...],
    space: QueryTermSpace,
) -> List[IdRow]:
    """Filter rows with an id fast path and a decode fallback.

    Equal ids mean equal terms, which settles every operator without
    evaluating a comparison — except for ``xsd:double`` literals, where the
    value may be NaN and even ``?x = ?x`` is false; those take the fallback.
    *Different* ids settle nothing for value comparisons (distinct terms may
    be equal by value, e.g. across numeric datatypes), so those rows fall
    back to decoding just the filter's operands and delegating to
    :meth:`Filter.evaluate` — semantics stay byte-for-byte those of the
    reference executor.
    """
    compiled = []
    for flt in filters:
        left = _compile_filter_side(flt.left, schema, space)
        right = _compile_filter_side(flt.right, schema, space)
        if left[0] == "unbound" or right[0] == "unbound":
            # An unbound operand fails the filter for every row.
            return []
        compiled.append((flt, left, right))

    decode = space.decode
    deadline = current_deadline()
    row_iter: Iterable[IdRow] = rows
    if deadline is not None:
        row_iter = probed_rows(rows, deadline)
    out: List[IdRow] = []
    append = out.append
    for row in row_iter:
        keep = True
        for flt, (left_kind, left_value, _), (right_kind, right_value, _) in compiled:
            left_id = row[left_value] if left_kind == "var" else left_value
            right_id = row[right_value] if right_kind == "var" else right_value
            if left_id == right_id:
                term = decode(left_id)
                if not (isinstance(term, Literal) and term.datatype in _UNSAFE_EQUAL_DATATYPES):
                    if flt.operator in _TRUE_ON_EQUAL:
                        continue
                    keep = False
                    break
                # Numeric literals fall through to Filter.evaluate: a double
                # may be NaN (no comparison holds, even reflexively) and a
                # malformed integer lexical must raise like the reference.
            fallback: Binding = {}
            if left_kind == "var":
                fallback[flt.left.name] = decode(left_id)  # type: ignore[union-attr]
            if right_kind == "var":
                fallback[flt.right.name] = decode(right_id)  # type: ignore[union-attr]
            if not flt.evaluate(fallback):
                keep = False
                break
        if keep:
            append(row)
    return out


def finish_id_pipeline(
    schema: Tuple[str, ...],
    rows: List[IdRow],
    query: SelectQuery,
    counters: WorkCounters,
    space: QueryTermSpace,
) -> ExecutionResult:
    """The ID pipeline epilogue: filters, DISTINCT (on projected id tuples),
    LIMIT, then **one batch decode** of the surviving rows into bindings.

    Shared by the unsharded and sharded executors so late materialization
    (and result accounting) cannot drift between them.
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(counters)
    if query.filters and rows:
        rows = _apply_id_filters(schema, rows, query.filters, space)

    names = query.projected_names()
    positions = tuple(schema.index(n) if n in schema else -1 for n in names)

    if query.distinct:
        if deadline is not None:
            rows = probed_rows(rows, deadline, counters)
        seen: set = set()
        unique: List[IdRow] = []
        append_unique = unique.append
        add = seen.add
        for row in rows:
            key = tuple(row[p] if p >= 0 else None for p in positions)
            if key not in seen:
                add(key)
                append_unique(row)
        rows = unique
    if query.limit is not None:
        rows = rows[: query.limit]

    bound = [(name, p) for name, p in zip(names, positions) if p >= 0]
    id_to_term = space.decode_map(row[p] for row in rows for _, p in bound)
    bindings: List[Binding] = [
        {name: id_to_term[row[p]] for name, p in bound} for row in rows
    ]
    counters.results_produced += len(bindings)
    return ExecutionResult(
        bindings=bindings,
        variables=tuple(names),
        counters=counters,
        store="relational",
    )


# ---------------------------------------------------------------------- #
# Term-space evaluation primitives (the retained reference path)
# ---------------------------------------------------------------------- #
def bind_pattern_row(
    dictionary: TermDictionary, pattern: TriplePattern, row: Row
) -> Optional[Binding]:
    """Match one stored row against a pattern, producing a decoded binding.

    This is the decode-per-row reference path (three decodes per row); the
    hot path uses :func:`match_id_rows` instead and decodes at projection.
    """
    binding: Binding = {}
    for term, term_id in zip((pattern.subject, pattern.predicate, pattern.object), row):
        if isinstance(term, Variable):
            value = dictionary.decode(term_id)
            existing = binding.get(term.name)
            if existing is not None and existing != value:
                return None
            binding[term.name] = value
        else:
            stored: TermLike = dictionary.decode(term_id)
            if stored != term:
                return None
    return binding


def join_pattern_rows(
    bindings: List[Binding],
    pattern: TriplePattern,
    pattern_rows: List[Binding],
    counters: WorkCounters,
) -> List[Binding]:
    """Hash-join already-materialized pattern bindings into the pipeline.

    Charges ``rows_joined`` per produced tuple, exactly like the ID-space
    join (:func:`join_id_pattern_rows`).
    """
    if not bindings or not pattern_rows:
        return []

    # Hash join on the shared variables (if any); cartesian product otherwise.
    if bindings == [{}]:
        counters.rows_joined += len(pattern_rows)
        return pattern_rows

    shared = _shared_variable_names(bindings[0], pattern)
    output: List[Binding] = []
    if shared:
        index: Dict[tuple, List[Binding]] = {}
        for row_binding in pattern_rows:
            key = tuple(row_binding[name] for name in shared)
            index.setdefault(key, []).append(row_binding)
        for binding in bindings:
            key = tuple(binding[name] for name in shared)
            for row_binding in index.get(key, ()):
                merged = merge_bindings(binding, row_binding)
                if merged is not None:
                    output.append(merged)
    else:
        for binding in bindings:
            for row_binding in pattern_rows:
                merged = merge_bindings(binding, row_binding)
                if merged is not None:
                    output.append(merged)
    counters.rows_joined += len(output)
    return output


def join_result_table(
    bindings: List[Binding],
    table: ResultTable,
    counters: WorkCounters,
    as_view: bool = False,
) -> List[Binding]:
    """Join a migrated intermediate-result table into the pipeline.

    Like :func:`join_pattern_rows`, the join runs on a hash index over the
    variables the table shares with the pipeline; the nested-loop cartesian
    merge only remains for tables sharing no variable at all.
    """
    if not bindings:
        return []
    if as_view:
        counters.view_rows_scanned += len(table)
    else:
        counters.rows_scanned += len(table)
    table_bindings = table.to_bindings()
    if bindings == [{}]:
        counters.rows_joined += len(table_bindings)
        return table_bindings
    output: List[Binding] = []
    shared = sorted(set(bindings[0]) & set(table.variables))
    if shared:
        index: Dict[tuple, List[Binding]] = {}
        for table_binding in table_bindings:
            key = tuple(table_binding[name] for name in shared)
            index.setdefault(key, []).append(table_binding)
        for binding in bindings:
            key = tuple(binding[name] for name in shared)
            for table_binding in index.get(key, ()):
                merged = merge_bindings(binding, table_binding)
                if merged is not None:
                    output.append(merged)
    else:
        for binding in bindings:
            for table_binding in table_bindings:
                merged = merge_bindings(binding, table_binding)
                if merged is not None:
                    output.append(merged)
    counters.rows_joined += len(output)
    return output


def apply_filters(bindings: List[Binding], filters: tuple[Filter, ...]) -> List[Binding]:
    if not filters:
        return bindings
    return [b for b in bindings if all(f.evaluate(b) for f in filters)]


def project_bindings(bindings: List[Binding], query: SelectQuery) -> List[Binding]:
    names = query.projected_names()
    projected: List[Binding] = []
    for binding in bindings:
        projected.append({name: binding[name] for name in names if name in binding})
    return projected


def distinct_bindings(bindings: List[Binding], names: tuple[str, ...]) -> List[Binding]:
    seen: set[tuple] = set()
    unique: List[Binding] = []
    for binding in bindings:
        key = tuple(binding.get(name) for name in names)
        if key not in seen:
            seen.add(key)
            unique.append(binding)
    return unique


def check_work_budget(counters: WorkCounters, work_budget: Optional[float]) -> None:
    if work_budget is None:
        return
    spent = relational_work_units(counters)
    if spent > work_budget:
        raise WorkBudgetExceeded(
            f"relational execution exceeded its work budget ({spent:.0f} > {work_budget:.0f})",
            partial_work=spent,
        )


def join_extra_tables(
    bindings: List[Binding],
    extra_tables: Optional[Iterable[ResultTable]],
    counters: WorkCounters,
    tables_are_views: bool,
    work_budget: Optional[float],
) -> List[Binding]:
    """The pipeline prologue: join migrated tables, budget-checked per table."""
    for table in extra_tables or ():
        bindings = join_result_table(bindings, table, counters, as_view=tables_are_views)
        check_work_budget(counters, work_budget)
    return bindings


def finish_pipeline(
    bindings: List[Binding], query: SelectQuery, counters: WorkCounters
) -> ExecutionResult:
    """The term-space pipeline epilogue: filters, projection, DISTINCT,
    LIMIT, result accounting — the reference executor's counterpart of
    :func:`finish_id_pipeline`."""
    bindings = apply_filters(bindings, query.filters)
    bindings = project_bindings(bindings, query)
    if query.distinct:
        bindings = distinct_bindings(bindings, query.projected_names())
    if query.limit is not None:
        bindings = bindings[: query.limit]
    counters.results_produced += len(bindings)
    return ExecutionResult(
        bindings=bindings,
        variables=tuple(query.projected_names()),
        counters=counters,
        store="relational",
    )


class RelationalExecutor:
    """Evaluates plans against a :class:`TripleTable`, entirely in ID space."""

    def __init__(self, table: TripleTable):
        self._table = table

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        plan: RelationalPlan,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
        compiled: Optional[CompiledPlan] = None,
    ) -> ExecutionResult:
        """Run ``plan`` and return projected solutions plus work counters.

        ``extra_tables`` are temporary tables (migrated intermediate results)
        joined into the pipeline before the base-table patterns; the query
        processor uses this for Case 2 plans.  When ``tables_are_views`` is
        true their rows are charged as ``view_rows_scanned`` instead of
        ``rows_scanned`` (the RDB-views baseline).  ``compiled`` is the plan
        with constants pre-resolved (the store's bound-plan memo provides
        it); when absent the plan is compiled here.
        """
        dictionary = self._table.dictionary
        if compiled is None:
            compiled = compile_plan(plan, dictionary)
        counters = WorkCounters(queries_issued=1)
        space = QueryTermSpace(dictionary)
        schema: Tuple[str, ...] = ()
        rows: List[IdRow] = [()]
        schema, rows = join_id_extra_tables(
            schema, rows, extra_tables, space, counters, tables_are_views, work_budget
        )

        for step in compiled.steps:
            # Guard before scanning: once the pipeline is empty (e.g. a Case 2
            # plan whose migrated table had no rows), later steps must charge
            # zero work, exactly like the reference executor.
            if not rows:
                break
            pattern_rows = self._step_rows(step, counters)
            schema, rows = join_id_pattern_rows(schema, rows, step.matcher, pattern_rows, counters)
            check_work_budget(counters, work_budget)

        return finish_id_pipeline(schema, rows, query, counters, space)

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #
    def _step_rows(self, step: CompiledStep, counters: WorkCounters) -> List[IdRow]:
        table = self._table
        if step.access_path == "table_scan":
            return match_id_rows(step.matcher, table.scan(), counters)

        if step.predicate_id is None:
            return []

        if step.access_path == "index_subject":
            counters.index_lookups += 1
            if step.subject_id is None:
                return []
            rows: Iterable[Row] = table.lookup_subject(step.predicate_id, step.subject_id)
        elif step.access_path == "index_object":
            counters.index_lookups += 1
            if step.object_id is None:
                return []
            rows = table.lookup_object(step.predicate_id, step.object_id)
        elif step.access_path == "partition_scan":
            rows = table.scan_predicate(step.predicate_id)
        else:  # pragma: no cover - defensive
            raise QueryExecutionError(f"unknown access path {step.access_path!r}")

        return match_id_rows(step.matcher, rows, counters)


def _shared_variable_names(binding: Binding, pattern: TriplePattern) -> List[str]:
    return sorted(set(binding) & pattern.variable_names())
