"""Relational store facade (the MySQL stand-in of the dual-store structure).

The relational store holds the *entire* knowledge graph at all times.  It is
cheap to update (plain row inserts) but its complex-query latency grows with
the data size because every triple pattern turns into a partition scan that
feeds a join pipeline.

The facade wires together the triple table, statistics, planner, executor,
optional materialized views, and the cost model that converts work counters
into seconds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.cost.counters import WorkCounters
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.errors import SnapshotError, WorkBudgetExceeded
from repro.execution import ExecutionResult, ResultTable
from repro.rdf.graph import TripleSet
from repro.rdf.terms import IRI, Triple
from repro.sparql.ast import SelectQuery, TriplePattern

from repro.relstore.columnar import ColumnarExecutor, ColumnarTripleTable
from repro.relstore.executor import (
    BoundPlanCache,
    CompiledPlan,
    RelationalExecutor,
    relational_work_units,
)
from repro.relstore.planner import RelationalPlan, kernel_costs_for_engine, plan_query
from repro.relstore.reference import ReferenceExecutor
from repro.relstore.stats import TableStatistics, collect_statistics
from repro.relstore.table import TripleTable
from repro.relstore.views import MaterializedView, MaterializedViewManager

__all__ = [
    "RelationalStore",
    "relational_work_units",
    "capped_execution",
    "estimate_relational_seconds",
]


def capped_execution(store, query: SelectQuery, work_budget: float):
    """Run ``store.execute`` under a work cap; ``(result_or_None, seconds)``.

    The paper's counterfactual thread stopped at ``λ·c₁``: on budget
    exhaustion the partial work is priced as plain row scans.  Shared by the
    unsharded and sharded stores so the counterfactual pricing convention
    can never drift between them.
    """
    try:
        result = store.execute(query, work_budget=work_budget)
        return result, result.seconds
    except WorkBudgetExceeded as exc:
        partial = WorkCounters(rows_scanned=int(exc.partial_work), queries_issued=1)
        return None, store.cost_model.relational_query_seconds(partial)


def estimate_relational_seconds(
    statistics: TableStatistics, cost_model: CostModel, query: SelectQuery
) -> float:
    """Price a query from statistics only (the ideal/one-off tuners' path)."""
    work = statistics.estimate_query_work(query)
    counters = WorkCounters(rows_scanned=int(work), queries_issued=1)
    return cost_model.relational_query_seconds(counters)


class RelationalStore:
    """A work-accounted relational triple store.

    Parameters
    ----------
    cost_model:
        Converts work counters into latency seconds on every execution.
    view_row_budget:
        When given, a :class:`MaterializedViewManager` is attached with that
        row budget (used by the RDB-views baseline).
    engine:
        ``"idspace"`` (default) runs the late-materialization ID-space
        engine with its bound-plan memo; ``"columnar"`` runs the vectorized
        columnar engine (term-id columns, mask selection, batched hash
        joins — numpy-accelerated when available) with the same memo;
        ``"reference"`` runs the retained decode-per-row executor (the
        differential oracle and the benchmark baseline), which re-plans and
        re-resolves constants per execution like the pre-PR-3 store did.
    dictionary:
        An existing term dictionary to encode against (the snapshot-restore
        path rebuilds the dictionary first so persisted integer rows keep
        their meaning); ``None`` starts an empty one.
    """

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        view_row_budget: Optional[int] = None,
        engine: str = "idspace",
        dictionary=None,
    ):
        if engine not in ("idspace", "reference", "columnar"):
            raise ValueError(f"unknown relational engine {engine!r}")
        self.cost_model = cost_model
        self.engine = engine
        if engine == "columnar":
            self.table: TripleTable = ColumnarTripleTable(dictionary)
            self._executor = ColumnarExecutor(self.table)
        elif engine == "idspace":
            self.table = TripleTable(dictionary)
            self._executor = RelationalExecutor(self.table)
        else:
            self.table = TripleTable(dictionary)
            self._executor = ReferenceExecutor(self.table)
        self._statistics: Optional[TableStatistics] = None
        #: query → (plan, compiled plan) memo, invalidated by generation.
        self._bound_plans = BoundPlanCache()
        self._plan_generation = 0
        self.view_manager: Optional[MaterializedViewManager] = (
            MaterializedViewManager(row_budget=view_row_budget) if view_row_budget is not None else None
        )
        self.total_insert_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Loading and updates
    # ------------------------------------------------------------------ #
    def load(self, triples: Iterable[Triple] | TripleSet) -> float:
        """Bulk-load triples; returns the modelled insert latency."""
        inserted = self.table.insert_all(triples)
        self._invalidate_derived_state()
        seconds = self.cost_model.relational_insert_seconds(inserted)
        self.total_insert_seconds += seconds
        return seconds

    def _invalidate_derived_state(self) -> None:
        """Drop statistics and age out bound plans after any mutation.

        New terms may have entered the dictionary and cardinalities may have
        shifted, so both the plan ordering and the pre-resolved constant ids
        of every bound plan are suspect; bumping the generation makes the
        memo re-bind lazily, one query at a time.
        """
        self._statistics = None
        self._plan_generation += 1

    def insert(self, triples: Iterable[Triple]) -> float:
        """Insert new knowledge (the cheap-update property of the store)."""
        return self.load(triples)

    def delete(self, triple: Triple) -> bool:
        removed = self.table.delete(triple)
        if removed:
            self._invalidate_derived_state()
        return removed

    def __len__(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------ #
    # Metadata
    # ------------------------------------------------------------------ #
    def predicates(self) -> List[IRI]:
        return self.table.predicates()

    def partition(self, predicate: IRI) -> List[Triple]:
        """The triple partition for ``predicate`` (what gets shipped to the graph store)."""
        return self.table.partition(predicate)

    def partition_size(self, predicate: IRI) -> int:
        return self.table.predicate_cardinality(predicate)

    def partition_sizes(self) -> Dict[IRI, int]:
        return self.table.cardinalities()

    def statistics(self) -> TableStatistics:
        """Current table statistics (recomputed lazily after mutations)."""
        if self._statistics is None:
            self._statistics = collect_statistics(self.table)
        return self._statistics

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def plan(self, query: SelectQuery, pattern_order: Sequence[TriplePattern] | None = None) -> RelationalPlan:
        return plan_query(
            query,
            self.statistics(),
            pattern_order=pattern_order,
            kernel_costs=kernel_costs_for_engine(self.engine),
        )

    def _bound_plan(self, query: SelectQuery) -> tuple[RelationalPlan, CompiledPlan]:
        """The query's plan with constants pre-resolved, memoized per store
        generation (the serving layer replays identical parsed queries, so a
        hit skips planning *and* every per-pattern constant lookup)."""
        return self._bound_plans.get_or_bind(
            query, self._plan_generation, lambda: self.plan(query), self.table.dictionary
        )

    def execute(
        self,
        query: SelectQuery,
        work_budget: Optional[float] = None,
        extra_tables: Optional[Iterable[ResultTable]] = None,
        tables_are_views: bool = False,
        pattern_order: Sequence[TriplePattern] | None = None,
    ) -> ExecutionResult:
        """Execute a query entirely in the relational store.

        Raises
        ------
        WorkBudgetExceeded
            When ``work_budget`` (in relational work units) is exhausted; the
            exception carries the partial work so the caller can price it.
        """
        compiled: Optional[CompiledPlan] = None
        if self.engine in ("idspace", "columnar") and pattern_order is None:
            plan, compiled = self._bound_plan(query)
        else:
            plan = self.plan(query, pattern_order=pattern_order)
        result = self._executor.execute(
            query,
            plan,
            work_budget=work_budget,
            extra_tables=extra_tables,
            tables_are_views=tables_are_views,
            compiled=compiled,
        )
        result.seconds = self.cost_model.relational_query_seconds(result.counters)
        result.store = "relational"
        return result

    def execute_capped(
        self,
        query: SelectQuery,
        work_budget: float,
    ) -> tuple[Optional[ExecutionResult], float]:
        """Run with a cap; return ``(result_or_None, seconds)``.

        On budget exhaustion the result is ``None`` and the returned seconds
        are the price of the work done so far — this is the counterfactual
        thread that the paper stops once it has run for ``λ·c₁``.
        """
        return capped_execution(self, query, work_budget)

    def execute_with_view(self, query: SelectQuery, view: MaterializedView) -> ExecutionResult:
        """Answer ``query`` using a materialized view for part of its pattern.

        The view's defining patterns are removed from the WHERE clause and the
        view rows are joined back in as a temporary table (charged as view
        rows).  Patterns not covered by the view run against the base table.
        """
        covered = set(view.patterns)
        remaining = [p for p in query.patterns if p not in covered]
        if remaining:
            residual = query.with_patterns(remaining, projection=query.projection)
        else:
            # Everything is covered: keep one pattern-free shell by projecting
            # straight from the view rows.
            residual = None

        if residual is None:
            counters = WorkCounters(view_rows_scanned=len(view.table), queries_issued=1)
            names = query.projected_names()
            bindings = [
                {name: binding[name] for name in names if name in binding}
                for binding in view.table.to_bindings()
            ]
            if query.distinct:
                seen = set()
                unique = []
                for binding in bindings:
                    key = tuple(binding.get(name) for name in names)
                    if key not in seen:
                        seen.add(key)
                        unique.append(binding)
                bindings = unique
            counters.results_produced = len(bindings)
            result = ExecutionResult(bindings=bindings, variables=tuple(names), counters=counters)
        else:
            result = self._executor.execute(
                residual,
                self.plan(residual),
                extra_tables=[view.table],
                tables_are_views=True,
            )
        result.seconds = self.cost_model.relational_query_seconds(result.counters)
        result.store = "relational"
        return result

    # ------------------------------------------------------------------ #
    # Estimation (no execution)
    # ------------------------------------------------------------------ #
    def estimate_query_seconds(self, query: SelectQuery) -> float:
        """Price a query from statistics only (used by the ideal/one-off tuners)."""
        return estimate_relational_seconds(self.statistics(), self.cost_model, query)

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def content_token(self) -> int:
        """A token that changes whenever the stored triples change.

        Data mutations (``load``/``insert``/``delete``) bump it; physical
        moves elsewhere in the dual store do not.  :mod:`repro.persist` keys
        its dataset-fingerprint cache on this, so placement-only checkpoints
        skip the full fingerprint pass."""
        return self._plan_generation

    def snapshot_state(self) -> dict:
        """JSON-serializable store state (rows + statistics; the dictionary
        is persisted separately since the graph/dual layers share it)."""
        if self.view_manager is not None:
            raise SnapshotError(
                "snapshotting a store with materialized views is not supported; "
                "drop the view manager or snapshot the base store"
            )
        return {
            "kind": "relational",
            "engine": self.engine,
            "rows": self.table.dump_rows(),
            "statistics": self.statistics().to_payload(),
            "total_insert_seconds": self.total_insert_seconds,
        }

    @classmethod
    def restore_state(
        cls, state: dict, dictionary, cost_model: CostModel = DEFAULT_COST_MODEL
    ) -> "RelationalStore":
        """Rebuild a store from :meth:`snapshot_state` against a restored
        dictionary.  Row order (and therefore index order, scan order, query
        results, and work counters) matches the snapshotted store exactly."""
        store = cls(cost_model=cost_model, engine=state["engine"], dictionary=dictionary)
        store.table.load_rows(state["rows"])
        store._statistics = TableStatistics.from_payload(state["statistics"])
        store.total_insert_seconds = float(state["total_insert_seconds"])
        return store
