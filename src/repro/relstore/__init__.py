"""Relational store (MySQL stand-in): triple table, planner, executor, views, SQLite, shards."""

from repro.relstore.backend import RelationalBackend
from repro.relstore.columnar import (
    ColumnarExecutor,
    ColumnarTripleTable,
    numpy_available,
    numpy_enabled,
)
from repro.relstore.executor import (
    BoundPlanCache,
    CompiledPlan,
    RelationalExecutor,
    compile_pattern,
    compile_plan,
    relational_work_units,
)
from repro.relstore.planner import (
    BATCH_KERNEL_COSTS,
    KernelCostModel,
    PatternAccess,
    RelationalPlan,
    ROW_KERNEL_COSTS,
    kernel_costs_for_engine,
    plan_query,
)
from repro.relstore.reference import ReferenceExecutor
from repro.relstore.sharded import ShardedRelationalStore, ShardingConfig, ShardMetricsBoard
from repro.relstore.sql_compiler import CompiledSQL, compile_select
from repro.relstore.sqlite_backend import SQLiteBackend
from repro.relstore.stats import TableStatistics, collect_statistics
from repro.relstore.store import RelationalStore
from repro.relstore.table import TripleTable
from repro.relstore.views import MaterializedView, MaterializedViewManager, canonical_pattern_key

__all__ = [
    "RelationalBackend",
    "RelationalStore",
    "ShardedRelationalStore",
    "ShardingConfig",
    "ShardMetricsBoard",
    "TripleTable",
    "ColumnarTripleTable",
    "ColumnarExecutor",
    "numpy_available",
    "numpy_enabled",
    "RelationalExecutor",
    "ReferenceExecutor",
    "KernelCostModel",
    "ROW_KERNEL_COSTS",
    "BATCH_KERNEL_COSTS",
    "kernel_costs_for_engine",
    "BoundPlanCache",
    "CompiledPlan",
    "compile_pattern",
    "compile_plan",
    "relational_work_units",
    "RelationalPlan",
    "PatternAccess",
    "plan_query",
    "TableStatistics",
    "collect_statistics",
    "MaterializedView",
    "MaterializedViewManager",
    "canonical_pattern_key",
    "CompiledSQL",
    "compile_select",
    "SQLiteBackend",
]
