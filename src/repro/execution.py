"""Execution result types shared by the relational and graph stores."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cost.counters import WorkCounters
from repro.rdf.terms import TermLike
from repro.sparql.ast import Binding

__all__ = ["ExecutionResult", "ResultTable", "ScatterGatherInfo"]


@dataclass(frozen=True)
class ScatterGatherInfo:
    """Per-shard breakdown of one scatter-gather execution.

    Attached to :attr:`ExecutionResult.scatter` by the sharded relational
    store; ``None`` on single-store executions.

    Attributes
    ----------
    shard_seconds:
        Modelled busy seconds each shard spent probing for this query
        (index ``i`` = shard ``i``; zero for shards the plan never touched).
    parallel_seconds:
        Modelled wall-clock under the scatter-gather model: per plan step
        the slowest shard probe, plus the coordinator's serial merge work.
        For a result produced by the sharded relational store itself this
        equals :attr:`ExecutionResult.seconds`; on a split (``store="dual"``)
        result the info covers only the *relational leg*, while ``seconds``
        additionally includes the graph and migration legs.
    serial_seconds:
        What the same work would cost on one shard (the classic
        ``relational_query_seconds`` price of the total counters); the
        sum-of-work currency the differential suite compares.
    """

    shard_seconds: Tuple[float, ...]
    parallel_seconds: float
    serial_seconds: float

    @property
    def speedup(self) -> float:
        """Modelled serial/parallel ratio (≥ 1.0 when sharding helps)."""
        if self.parallel_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.parallel_seconds


@dataclass
class ExecutionResult:
    """The outcome of executing one query (or subquery) in one store.

    Attributes
    ----------
    bindings:
        The solution mappings (variable name → term), already projected.
    variables:
        The projected variable names, in order.
    counters:
        Work performed while producing the result.
    seconds:
        Latency attributed to the execution by the cost model (and any
        resource throttle).  ``0.0`` until a cost model prices the counters.
    store:
        ``"relational"``, ``"graph"``, or ``"dual"`` for split plans.
    truncated:
        True when a work budget stopped the execution early (counterfactual
        runs capped at ``lambda * c1``).
    """

    bindings: List[Binding]
    variables: Tuple[str, ...]
    counters: WorkCounters = field(default_factory=WorkCounters)
    seconds: float = 0.0
    store: str = "relational"
    truncated: bool = False
    #: Per-shard accounting when the execution was scatter-gathered.
    scatter: Optional[ScatterGatherInfo] = None

    def __len__(self) -> int:
        return len(self.bindings)

    def rows(self) -> List[Tuple[TermLike, ...]]:
        """The solutions as tuples ordered by :attr:`variables`."""
        return [tuple(binding[name] for name in self.variables) for binding in self.bindings]

    def distinct_rows(self) -> set[Tuple[TermLike, ...]]:
        return set(self.rows())

    def column(self, variable: str) -> List[TermLike]:
        """All values bound to ``variable`` across the solutions."""
        return [binding[variable] for binding in self.bindings if variable in binding]


@dataclass
class ResultTable:
    """A named intermediate-result table migrated into the relational store.

    Case 2 plans (Section 5) execute the complex subquery in the graph store
    and ship its solutions into a *temporary relational table space*; this is
    that table.
    """

    name: str
    variables: Tuple[str, ...]
    rows: List[Tuple[TermLike, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def to_bindings(self) -> List[Binding]:
        return [dict(zip(self.variables, row)) for row in self.rows]

    def encoded_rows(self, encode: Callable[[TermLike], int]) -> List[Tuple[int, ...]]:
        """The rows as integer-id tuples, for the ID-space join pipeline.

        ``encode`` is typically ``QueryTermSpace.encode``: terms known to the
        store's dictionary keep their dictionary ids, terms that exist only
        in this migrated table get execution-local (negative) ids — either
        way the table joins on ints like every other pipeline input.
        """
        return [tuple(encode(value) for value in row) for row in self.rows]

    @classmethod
    def from_result(cls, name: str, result: ExecutionResult) -> "ResultTable":
        return cls(name=name, variables=result.variables, rows=result.rows())

    def column_index(self, variable: str) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise KeyError(f"variable {variable!r} is not a column of table {self.name!r}") from None

    def build_index(self, variables: Sequence[str]) -> Dict[Tuple[TermLike, ...], List[Tuple[TermLike, ...]]]:
        """Hash the rows by the given join variables."""
        positions = [self.column_index(v) for v in variables]
        index: Dict[Tuple[TermLike, ...], List[Tuple[TermLike, ...]]] = {}
        for row in self.rows:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return index
