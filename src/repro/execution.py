"""Execution result types shared by the relational and graph stores."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cost.counters import WorkCounters
from repro.rdf.terms import TermLike
from repro.sparql.ast import Binding

__all__ = ["ExecutionResult", "ResultTable"]


@dataclass
class ExecutionResult:
    """The outcome of executing one query (or subquery) in one store.

    Attributes
    ----------
    bindings:
        The solution mappings (variable name → term), already projected.
    variables:
        The projected variable names, in order.
    counters:
        Work performed while producing the result.
    seconds:
        Latency attributed to the execution by the cost model (and any
        resource throttle).  ``0.0`` until a cost model prices the counters.
    store:
        ``"relational"``, ``"graph"``, or ``"dual"`` for split plans.
    truncated:
        True when a work budget stopped the execution early (counterfactual
        runs capped at ``lambda * c1``).
    """

    bindings: List[Binding]
    variables: Tuple[str, ...]
    counters: WorkCounters = field(default_factory=WorkCounters)
    seconds: float = 0.0
    store: str = "relational"
    truncated: bool = False

    def __len__(self) -> int:
        return len(self.bindings)

    def rows(self) -> List[Tuple[TermLike, ...]]:
        """The solutions as tuples ordered by :attr:`variables`."""
        return [tuple(binding[name] for name in self.variables) for binding in self.bindings]

    def distinct_rows(self) -> set[Tuple[TermLike, ...]]:
        return set(self.rows())

    def column(self, variable: str) -> List[TermLike]:
        """All values bound to ``variable`` across the solutions."""
        return [binding[variable] for binding in self.bindings if variable in binding]


@dataclass
class ResultTable:
    """A named intermediate-result table migrated into the relational store.

    Case 2 plans (Section 5) execute the complex subquery in the graph store
    and ship its solutions into a *temporary relational table space*; this is
    that table.
    """

    name: str
    variables: Tuple[str, ...]
    rows: List[Tuple[TermLike, ...]]

    def __len__(self) -> int:
        return len(self.rows)

    def to_bindings(self) -> List[Binding]:
        return [dict(zip(self.variables, row)) for row in self.rows]

    @classmethod
    def from_result(cls, name: str, result: ExecutionResult) -> "ResultTable":
        return cls(name=name, variables=result.variables, rows=result.rows())

    def column_index(self, variable: str) -> int:
        try:
            return self.variables.index(variable)
        except ValueError:
            raise KeyError(f"variable {variable!r} is not a column of table {self.name!r}") from None

    def build_index(self, variables: Sequence[str]) -> Dict[Tuple[TermLike, ...], List[Tuple[TermLike, ...]]]:
        """Hash the rows by the given join variables."""
        positions = [self.column_index(v) for v in variables]
        index: Dict[Tuple[TermLike, ...], List[Tuple[TermLike, ...]]] = {}
        for row in self.rows:
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return index
