"""Query deadlines with cooperative cancellation.

A :class:`Deadline` is a wall-clock budget carried from the serving layer
(``timeout`` request parameter / ``ServiceConfig.default_deadline_seconds``)
into the execution engines.  The engines cannot be preempted — they are plain
Python loops — so cancellation is *cooperative*: the hot loops call cheap
periodic probes (:meth:`Deadline.check` / :func:`probed_rows`) and an
over-budget execution raises :class:`~repro.errors.QueryTimeoutError`, which
frees the executor thread immediately and maps to a machine-readable ``504``
at the HTTP layer — never a hung slot.

**Propagation is ambient**, not threaded through every executor signature:
:func:`deadline_scope` installs the deadline in a ``threading.local`` for the
duration of one execution, and the engine loops fetch it with
:func:`current_deadline`.  This keeps the work-accounting-critical executor
signatures untouched (the differential suites pin them bit-for-bit) and makes
the probes literally free when no deadline is active — a single ``None``
check at loop entry.

Scope of coverage: the ID-space relational engine
(:mod:`repro.relstore.executor`), the graph matcher
(:mod:`repro.graphstore.matcher`), and — through them — the sharded
coordinator's request-thread loops.  Scatter-pool probe threads do not see
the request thread's ambient deadline (each shard probe is bounded by its
shard's size); the coordinator re-checks between gathers, which is what
bounds end-to-end latency.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, TypeVar

from repro.errors import QueryTimeoutError

__all__ = [
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "probed_rows",
    "PROBE_STRIDE",
]

#: Rows between deadline probes in streaming loops.  Small enough that even
#: pathological per-row costs keep the overshoot well under a 50 ms budget's
#: 2x acceptance bound; large enough that the probe is amortized to noise.
PROBE_STRIDE = 1024

_T = TypeVar("_T")


class Deadline:
    """One execution's wall-clock budget over an injectable monotonic clock.

    ``check()`` raises :class:`QueryTimeoutError` once the budget is spent;
    ``counters`` (anything with ``as_dict()``, i.e.
    :class:`~repro.cost.counters.WorkCounters`) rides along on the exception
    as the partial-work accounting.  The probes never mutate counters, so
    work accounting stays bit-identical to an unbudgeted run that survives.
    """

    __slots__ = ("budget_seconds", "_clock", "_started", "_expires")

    def __init__(self, budget_seconds: float, *, clock=time.monotonic):
        if budget_seconds <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_seconds = float(budget_seconds)
        self._clock = clock
        self._started = clock()
        self._expires = self._started + self.budget_seconds

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> float:
        return self._expires - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self._expires

    def check(self, counters=None) -> None:
        """Raise :class:`QueryTimeoutError` if the budget is spent."""
        now = self._clock()
        if now >= self._expires:
            elapsed = now - self._started
            raise QueryTimeoutError(
                f"query exceeded its {self.budget_seconds:.3f}s deadline "
                f"({elapsed:.3f}s elapsed)",
                budget_seconds=self.budget_seconds,
                elapsed_seconds=elapsed,
                partial_work=counters.as_dict() if counters is not None else None,
            )


_ambient = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The deadline installed on this thread, or ``None``."""
    return getattr(_ambient, "deadline", None)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]):
    """Install ``deadline`` as this thread's ambient deadline.

    ``None`` is a no-op scope, so callers can pass their optional deadline
    straight through.  Scopes nest: the previous ambient deadline (if any)
    is restored on exit.
    """
    if deadline is None:
        yield
        return
    previous = getattr(_ambient, "deadline", None)
    _ambient.deadline = deadline
    try:
        yield
    finally:
        _ambient.deadline = previous


def probed_rows(
    rows: Iterable[_T],
    deadline: Deadline,
    counters=None,
    stride: int = PROBE_STRIDE,
) -> Iterator[_T]:
    """Yield ``rows`` unchanged, probing the deadline every ``stride`` rows.

    The streaming probe the engine scan loops wrap their row sources with
    when (and only when) a deadline is active — zero allocation per row
    beyond the generator frame, zero effect on work counters.
    """
    n = 0
    for row in rows:
        n += 1
        if not n % stride:
            deadline.check(counters)
        yield row
