"""Self-healing supervision: a monitor loop over :class:`WorkerSupervisor`.

The supervisor (:mod:`repro.endpoint.worker`) can spawn/kill/restart workers
but nothing *watches* them — a crashed worker stays dead until a human calls
``restart``.  :class:`FleetMonitor` closes the loop:

* **exit detection** — a worker process that exited is restarted;
* **stuck detection** — a live process whose ``/healthz`` has not answered
  for ``stuck_after_seconds`` is considered wedged and restarted (the probe
  runs against the port in the worker's announce file);
* **exponential backoff** — consecutive restarts of one worker without an
  intervening healthy probe back off ``backoff_base_seconds * 2**n`` (capped),
  so a worker that dies on boot is retried at a measured pace, never a hot
  spin;
* **crash-loop quarantine** — more than ``crash_loop_threshold`` restarts
  inside ``crash_loop_window_seconds`` quarantines the worker for
  ``quarantine_seconds``: the monitor stops restarting it entirely until the
  quarantine expires, and counts the event.

Every decision is taken in :meth:`poll_once`, a synchronous deterministic
sweep over the fleet driven by an injectable clock — the unit tests run it
against a scripted fake supervisor and a fake clock, no processes and no
sleeps.  :meth:`start` wraps it in the background thread production uses.

Restart totals can be mirrored into a :class:`QueryService`'s counters
(``worker_restarts``) via the ``service`` argument, so one ``/metrics``
snapshot tells the whole resilience story.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

__all__ = ["MonitorPolicy", "FleetMonitor"]


@dataclass(frozen=True)
class MonitorPolicy:
    """Tunables of the self-healing loop.

    Attributes
    ----------
    probe_interval_seconds:
        Sleep between :meth:`FleetMonitor.poll_once` sweeps (thread mode).
    probe_timeout_seconds:
        HTTP timeout of one ``/healthz`` probe.
    stuck_after_seconds:
        A live worker whose last healthy probe is older than this is
        considered stuck and restarted.
    backoff_base_seconds / backoff_cap_seconds:
        Exponential backoff between consecutive restarts of one worker
        (``base * 2**(n-1)``, capped), reset by a healthy probe.
    crash_loop_threshold / crash_loop_window_seconds:
        More than ``threshold`` restarts of one worker within ``window``
        seconds is a crash loop.
    quarantine_seconds:
        How long a crash-looping worker is left alone before the monitor
        tries again.
    """

    probe_interval_seconds: float = 0.25
    probe_timeout_seconds: float = 2.0
    stuck_after_seconds: float = 15.0
    backoff_base_seconds: float = 0.2
    backoff_cap_seconds: float = 5.0
    crash_loop_threshold: int = 5
    crash_loop_window_seconds: float = 30.0
    quarantine_seconds: float = 60.0


class FleetMonitor:
    """Watch a worker fleet and heal it (see module docstring).

    Parameters
    ----------
    supervisor:
        Anything with the :class:`~repro.endpoint.worker.WorkerSupervisor`
        liveness surface: ``worker_indexes()``, ``is_alive(i)``,
        ``restart(i)``, ``announce(i)``, ``url(i)``.
    policy:
        Timing/threshold tunables.
    service:
        Optional :class:`~repro.serve.service.QueryService` to mirror the
        cumulative restart total into (``worker_restarts``).
    probe:
        Health probe ``url -> bool`` (injectable for tests); the default
        GETs ``/healthz`` and accepts any 200.
    clock:
        Monotonic clock (injectable for tests).
    """

    def __init__(
        self,
        supervisor,
        policy: Optional[MonitorPolicy] = None,
        *,
        service=None,
        probe: Optional[Callable[[str], bool]] = None,
        clock=time.monotonic,
    ):
        self.supervisor = supervisor
        self.policy = policy or MonitorPolicy()
        self._service = service
        self._probe = probe if probe is not None else self._http_probe
        self._clock = clock
        self._lock = threading.Lock()
        now = clock()
        #: Cumulative restarts per worker index.
        self.restarts: Dict[int, int] = {}
        #: Cumulative quarantine entries (crash loops detected).
        self.quarantines = 0
        #: index -> monotonic time the quarantine lifts.
        self.quarantined_until: Dict[int, float] = {}
        self._last_ok: Dict[int, float] = {}
        self._started_at = now
        self._recent: Dict[int, Deque[float]] = {}
        self._next_attempt: Dict[int, float] = {}
        self._consecutive: Dict[int, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Last exception a sweep swallowed (diagnostics; the loop survives).
        self.last_error: Optional[Exception] = None
        #: Cumulative probe invocations that raised (vs. answering unhealthy).
        self.probe_failures = 0
        #: Last exception a health probe raised (diagnostics).
        self.last_probe_error: Optional[Exception] = None

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    @property
    def total_restarts(self) -> int:
        with self._lock:
            return sum(self.restarts.values())

    def _record_probe_failure(self, exc: Exception) -> None:
        """A raising probe is *evidence*, not just "unhealthy": count it."""
        with self._lock:
            self.probe_failures += 1
            self.last_probe_error = exc

    def _http_probe(self, url: str) -> bool:
        from repro.endpoint.client import TransportError, fetch_json

        try:
            payload = fetch_json(url, "/healthz", timeout=self.policy.probe_timeout_seconds)
        except (*TransportError, ValueError):
            return False
        return bool(payload)

    # ------------------------------------------------------------------ #
    # The deterministic sweep
    # ------------------------------------------------------------------ #
    def poll_once(self) -> None:
        """One supervision sweep over every worker (synchronous)."""
        policy = self.policy
        for index in self.supervisor.worker_indexes():
            now = self._clock()
            until = self.quarantined_until.get(index)
            if until is not None:
                if now < until:
                    continue
                # Quarantine served: clean slate, try healing again.
                del self.quarantined_until[index]
                self._consecutive[index] = 0
                self._next_attempt[index] = 0.0
                self._recent.get(index, deque()).clear()
            if not self.supervisor.is_alive(index):
                self._schedule_restart(index, now, reason="exit")
                continue
            info = self.supervisor.announce(index)
            healthy = False
            if info is not None and info.get("port"):
                try:
                    healthy = self._probe(self.supervisor.url(index))
                except Exception as exc:  # noqa: BLE001 - a broken probe is "unhealthy"
                    self._record_probe_failure(exc)
                    healthy = False
            if healthy:
                self._last_ok[index] = now
                self._consecutive[index] = 0
                continue
            last_ok = self._last_ok.get(index, self._started_at)
            if now - last_ok >= policy.stuck_after_seconds:
                self._schedule_restart(index, now, reason="stuck")

    def _schedule_restart(self, index: int, now: float, *, reason: str) -> None:
        policy = self.policy
        if now < self._next_attempt.get(index, 0.0):
            return  # still backing off
        recent = self._recent.setdefault(index, deque())
        while recent and now - recent[0] > policy.crash_loop_window_seconds:
            recent.popleft()
        if len(recent) >= policy.crash_loop_threshold:
            # Crash loop: stop restarting this worker for a while.
            self.quarantined_until[index] = now + policy.quarantine_seconds
            self.quarantines += 1
            recent.clear()
            return
        self.supervisor.restart(index)
        recent.append(now)
        with self._lock:
            self.restarts[index] = self.restarts.get(index, 0) + 1
        consecutive = self._consecutive.get(index, 0) + 1
        self._consecutive[index] = consecutive
        backoff = min(
            policy.backoff_base_seconds * (2 ** (consecutive - 1)),
            policy.backoff_cap_seconds,
        )
        self._next_attempt[index] = now + backoff
        # Grace period: the fresh worker gets a full stuck window to come up
        # before the next sweep can call it stuck.
        self._last_ok[index] = now
        if self._service is not None:
            self._service.record_resilience(worker_restarts=self.total_restarts)

    # ------------------------------------------------------------------ #
    # Background-thread mode
    # ------------------------------------------------------------------ #
    def start(self) -> "FleetMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-fleet-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "FleetMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.policy.probe_interval_seconds):
            try:
                self.poll_once()
            except Exception as exc:  # noqa: BLE001 - the monitor must survive
                self.last_error = exc

    def wait_healthy(self, timeout: float = 60.0) -> "FleetMonitor":
        """Block until every worker is alive and answers its health probe."""
        deadline = self._clock() + timeout
        while True:
            healthy = True
            for index in self.supervisor.worker_indexes():
                if not self.supervisor.is_alive(index):
                    healthy = False
                    break
                info = self.supervisor.announce(index)
                if info is None or not info.get("port"):
                    healthy = False
                    break
                try:
                    if not self._probe(self.supervisor.url(index)):
                        healthy = False
                        break
                except Exception as exc:  # noqa: BLE001 - a broken probe is "unhealthy"
                    self._record_probe_failure(exc)
                    healthy = False
                    break
            if healthy:
                return self
            if self._clock() >= deadline:
                raise TimeoutError(f"fleet not healthy within {timeout:.0f}s")
            time.sleep(0.05)
