"""Deterministic fault injection: seeded schedules fired at named sites.

``test_persist_wal.py`` pioneered the discipline — monkeypatch a module seam
(``wal._write_frame``) with a wrapper that fails at step *k* — and this
module promotes it to a first-class subsystem.  Production code calls
:func:`fire` at its fault sites; with no plan installed that is one global
read and a ``None`` check (nanoseconds).  Tests install a :class:`FaultPlan`
(:func:`injected`) whose schedule is either hand-written or derived from a
seed, and every fired fault is recorded on the plan so the chaos suite can
assert counters *exactly* against the injected schedule.

Instrumented sites
------------------
========================  ====================================================
``wal.write``             one delta-log frame write (:mod:`repro.persist.wal`)
``snapshot.write``        one snapshot payload/manifest file write
``snapshot.publish``      the atomic ``CURRENT`` pointer publish
``pool.transport``        one :class:`~repro.endpoint.client.EndpointPool`
                          HTTP exchange (fired client-side, pre-request)
========================  ====================================================

Fault kinds: ``io-error`` raises :class:`InjectedFault` (an ``OSError`` *and*
a member of the client's transport-error family, so one exception type
exercises both the persist and the transport error paths) and ``latency``
sleeps ``latency_seconds`` then lets the operation proceed.

Kill schedules (worker SIGKILLs) cannot fire inside this process — they are
carried on the plan (:attr:`FaultPlan.kills`) for the harness to apply
through :class:`~repro.endpoint.worker.WorkerSupervisor`, keeping the whole
chaos schedule in one seeded object.

**Determinism contract**: a plan is a pure function of its constructor
arguments (:meth:`FaultPlan.seeded` uses one private ``random.Random(seed)``
stream), sites count their events under one lock in call order, and a fired
fault depends only on (site, event ordinal).  Same seed + same serialized
event order = same faults, every run.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "KillSpec",
    "FaultPlan",
    "install",
    "uninstall",
    "injected",
    "fire",
]


class InjectedFault(ConnectionError):
    """The error an ``io-error`` fault raises.

    ``ConnectionError`` is an ``OSError``, so persist-layer sites see a
    realistic I/O failure, and it is a member of
    :data:`repro.endpoint.client.TransportError`, so the pool retries it
    exactly like a dead socket.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: the ``at``-th event (1-based) at ``site``."""

    site: str
    at: int
    kind: str  # "io-error" | "latency"
    latency_seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in ("io-error", "latency"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 1:
            raise ValueError("fault ordinals are 1-based")


@dataclass(frozen=True)
class KillSpec:
    """One scheduled worker SIGKILL, applied by the harness (not by fire())."""

    worker: int
    after_event: int  # fire after the Nth "pool.transport" event


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, installable process-globally.

    ``specs`` may contain at most one fault per (site, ordinal); events at a
    site are counted in call order under the plan's lock.  Every fault that
    actually fires is appended to :attr:`fired` (in firing order), which is
    the ground truth the chaos assertions compare counters against.
    """

    specs: Sequence[FaultSpec] = ()
    kills: Sequence[KillSpec] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}
        self._by_site: Dict[str, Dict[int, FaultSpec]] = {}
        for spec in self.specs:
            slot = self._by_site.setdefault(spec.site, {})
            if spec.at in slot:
                raise ValueError(f"duplicate fault at ({spec.site!r}, {spec.at})")
            slot[spec.at] = spec
        self.fired: List[FaultSpec] = []
        self._sleep = time.sleep

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        site_events: Dict[str, int],
        io_error_rate: float = 0.05,
        latency_rate: float = 0.05,
        latency_seconds: float = 0.05,
        min_spacing: int = 1,
    ) -> "FaultPlan":
        """Derive a schedule from a seed: for each site, walk ordinals
        ``1..site_events[site]`` and draw each event's fate from one
        ``random.Random(seed)`` stream.  ``min_spacing`` forces at least
        that many clean events between two faults at one site (the chaos
        suite uses it to keep injected transport errors non-consecutive per
        round-robin target, so they never trip a healthy worker's breaker).
        """
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for site in sorted(site_events):
            last_fault = -min_spacing - 1
            for ordinal in range(1, site_events[site] + 1):
                draw = rng.random()
                if ordinal - last_fault <= min_spacing:
                    continue
                if draw < io_error_rate:
                    specs.append(FaultSpec(site=site, at=ordinal, kind="io-error"))
                    last_fault = ordinal
                elif draw < io_error_rate + latency_rate:
                    specs.append(
                        FaultSpec(
                            site=site,
                            at=ordinal,
                            kind="latency",
                            latency_seconds=latency_seconds,
                        )
                    )
                    last_fault = ordinal
        return cls(specs=tuple(specs), seed=seed)

    # ------------------------------------------------------------------ #
    # Firing
    # ------------------------------------------------------------------ #
    def event_count(self, site: str) -> int:
        with self._lock:
            return self._counts.get(site, 0)

    def fired_at(self, site: str) -> List[FaultSpec]:
        with self._lock:
            return [spec for spec in self.fired if spec.site == site]

    def fire(self, site: str) -> None:
        """Count one event at ``site``; apply the scheduled fault, if any."""
        with self._lock:
            ordinal = self._counts.get(site, 0) + 1
            self._counts[site] = ordinal
            spec = self._by_site.get(site, {}).get(ordinal)
            if spec is not None:
                self.fired.append(spec)
        if spec is None:
            return
        if spec.kind == "latency":
            self._sleep(spec.latency_seconds)
            return
        raise InjectedFault(f"{spec.message} at {site}#{ordinal}")


#: The process-global active plan; ``None`` means every fire() is a no-op.
_active: Optional[FaultPlan] = None
_install_lock = threading.Lock()


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process-global active plan (one at a time)."""
    global _active
    with _install_lock:
        if _active is not None:
            raise RuntimeError("a FaultPlan is already installed")
        _active = plan


def uninstall() -> None:
    global _active
    with _install_lock:
        _active = None


@contextmanager
def injected(plan: FaultPlan):
    """``with injected(plan):`` — install for the block, always uninstall."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def fire(site: str) -> None:
    """The production-side hook: one global read when no plan is active."""
    plan = _active
    if plan is not None:
        plan.fire(site)
