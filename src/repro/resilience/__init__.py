"""Self-healing serving: deadlines, breakers, fault injection, supervision.

Four cooperating pieces (see ``docs/architecture.md`` §10):

* :mod:`repro.resilience.deadline` — query deadlines with cooperative
  cancellation, probed from the engine hot loops;
* :mod:`repro.resilience.breaker` — per-worker circuit breakers for
  :class:`~repro.endpoint.client.EndpointPool`;
* :mod:`repro.resilience.faults` — the deterministic seeded fault-injection
  layer (``FaultPlan``) powering the chaos suite;
* :mod:`repro.resilience.fleet` — the self-healing ``FleetMonitor`` over
  :class:`~repro.endpoint.worker.WorkerSupervisor`.

``FleetMonitor``/``MonitorPolicy`` are re-exported lazily (PEP 562): the
fleet module imports the endpoint stack, whose executors import
:mod:`repro.resilience.deadline` — an eager import here would be circular.
"""

from repro.errors import QueryTimeoutError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, BreakerPolicy, CircuitBreaker
from repro.resilience.deadline import (
    PROBE_STRIDE,
    Deadline,
    current_deadline,
    deadline_scope,
    probed_rows,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    KillSpec,
    fire,
    injected,
    install,
    uninstall,
)

__all__ = [
    "QueryTimeoutError",
    "Deadline",
    "current_deadline",
    "deadline_scope",
    "probed_rows",
    "PROBE_STRIDE",
    "BreakerPolicy",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FaultPlan",
    "FaultSpec",
    "KillSpec",
    "InjectedFault",
    "fire",
    "injected",
    "install",
    "uninstall",
    "FleetMonitor",
    "MonitorPolicy",
]

_LAZY = {"FleetMonitor", "MonitorPolicy"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.resilience import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
