"""Per-target circuit breakers for the endpoint client pool.

The classic three-state machine, driven by the caller's success/failure
reports:

* **closed** — traffic flows; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker;
* **open** — :meth:`CircuitBreaker.allow` refuses traffic until
  ``reset_timeout_seconds`` has elapsed since the trip;
* **half-open** — after the reset timeout, up to ``half_open_probes``
  requests are let through as probes: one success closes the breaker, one
  failure re-trips it (a fresh ``open`` with a fresh timeout).

The clock is injectable so the unit tests drive the state machine
deterministically, and :attr:`CircuitBreaker.opens` counts trips cumulatively
— the chaos suite asserts it exactly equals the injected kill schedule.
Thread-safe: pool worker threads share one breaker per endpoint URL.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["BreakerPolicy", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Tunables of one circuit breaker.

    Attributes
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker.
    reset_timeout_seconds:
        How long an open breaker refuses traffic before letting half-open
        probes through.
    half_open_probes:
        Concurrent probe requests allowed in the half-open state.
    """

    failure_threshold: int = 3
    reset_timeout_seconds: float = 1.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.reset_timeout_seconds < 0:
            raise ValueError("reset_timeout_seconds must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be at least 1")


class CircuitBreaker:
    """One target's breaker state machine (see module docstring)."""

    def __init__(self, policy: BreakerPolicy | None = None, *, clock=time.monotonic):
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        #: Cumulative times the breaker tripped open.
        self.opens = 0

    @property
    def state(self) -> str:
        """The current state, resolving an elapsed open into ``half-open``."""
        with self._lock:
            if self._state == OPEN and self._reset_elapsed():
                return HALF_OPEN
            return self._state

    def _reset_elapsed(self) -> bool:
        return self._clock() - self._opened_at >= self.policy.reset_timeout_seconds

    def allow(self) -> bool:
        """May a request proceed to this target right now?

        In the half-open state a ``True`` answer *consumes* a probe permit,
        so callers must only ask when they will actually issue the request.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if not self._reset_elapsed():
                    return False
                self._state = HALF_OPEN
                self._probes_inflight = 0
            if self._probes_inflight < self.policy.half_open_probes:
                self._probes_inflight += 1
                return True
            return False

    def record_success(self) -> None:
        """A request to this target succeeded: close from any state."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probes_inflight = 0

    def record_failure(self) -> None:
        """A request to this target failed.

        Closed: count toward the threshold.  Half-open: the probe failed,
        re-trip immediately.  Open: ignored (only fallback traffic reaches
        an open breaker, and re-stamping the trip time would push recovery
        out indefinitely under load).
        """
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.policy.failure_threshold:
                    self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self.opens += 1
        self._failures = 0
        self._probes_inflight = 0
