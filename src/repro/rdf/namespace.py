"""Namespace helpers for building IRIs concisely.

Knowledge graphs in the paper's evaluation (YAGO, WatDiv, Bio2RDF) use long
IRIs with a shared prefix.  A :class:`Namespace` lets library code and tests
write ``YAGO.wasBornIn`` instead of the full IRI, and :class:`PrefixMap`
handles prefixed-name expansion/compaction for the SPARQL parser and for
pretty-printing results.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping

from repro.errors import TermError
from repro.rdf.terms import IRI

__all__ = ["Namespace", "PrefixMap", "YAGO", "RDF", "RDFS", "XSD", "WATDIV", "BIO2RDF", "DEFAULT_PREFIXES"]


class Namespace:
    """A base IRI that mints full IRIs via attribute or item access.

    Examples
    --------
    >>> yago = Namespace("http://yago-knowledge.org/resource/")
    >>> yago.wasBornIn
    IRI(value='http://yago-knowledge.org/resource/wasBornIn')
    >>> yago["Albert_Einstein"].value
    'http://yago-knowledge.org/resource/Albert_Einstein'
    """

    def __init__(self, base: str):
        if not base:
            raise TermError("namespace base IRI must be non-empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> IRI:
        """Return the IRI for a local name within this namespace."""
        if not local:
            raise TermError("local name must be non-empty")
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __contains__(self, iri: IRI | str) -> bool:
        value = iri.value if isinstance(iri, IRI) else iri
        return value.startswith(self._base)

    def local_name(self, iri: IRI | str) -> str:
        """Strip the namespace base from an IRI inside this namespace."""
        value = iri.value if isinstance(iri, IRI) else iri
        if not value.startswith(self._base):
            raise TermError(f"{value!r} is not in namespace {self._base!r}")
        return value[len(self._base):]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Namespace({self._base!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(self._base)


class PrefixMap:
    """A bidirectional mapping between prefixes and namespace bases."""

    def __init__(self, prefixes: Mapping[str, Namespace | str] | None = None):
        self._by_prefix: Dict[str, Namespace] = {}
        if prefixes:
            for prefix, namespace in prefixes.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: Namespace | str) -> None:
        """Associate ``prefix`` with ``namespace`` (later binds win)."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        self._by_prefix[prefix] = namespace

    def namespace(self, prefix: str) -> Namespace:
        try:
            return self._by_prefix[prefix]
        except KeyError:
            raise TermError(f"unknown prefix {prefix!r}") from None

    def expand(self, prefixed: str) -> IRI:
        """Expand a prefixed name such as ``y:wasBornIn`` to a full IRI."""
        if ":" not in prefixed:
            raise TermError(f"{prefixed!r} is not a prefixed name")
        prefix, local = prefixed.split(":", 1)
        return self.namespace(prefix).term(local)

    def compact(self, iri: IRI | str) -> str:
        """Compact an IRI to ``prefix:local`` when a binding covers it."""
        value = iri.value if isinstance(iri, IRI) else iri
        best_prefix = None
        best_base = ""
        for prefix, namespace in self._by_prefix.items():
            base = namespace.base
            if value.startswith(base) and len(base) > len(best_base):
                best_prefix, best_base = prefix, base
        if best_prefix is None:
            return value
        return f"{best_prefix}:{value[len(best_base):]}"

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_prefix)

    def __len__(self) -> int:
        return len(self._by_prefix)

    def copy(self) -> "PrefixMap":
        clone = PrefixMap()
        clone._by_prefix = dict(self._by_prefix)
        return clone


#: Namespaces used throughout the reproduction's datasets and examples.
YAGO = Namespace("http://yago-knowledge.org/resource/")
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
WATDIV = Namespace("http://db.uwaterloo.ca/~galuc/wsdbm/")
BIO2RDF = Namespace("http://bio2rdf.org/")

DEFAULT_PREFIXES = PrefixMap(
    {
        "y": YAGO,
        "yago": YAGO,
        "rdf": RDF,
        "rdfs": RDFS,
        "xsd": XSD,
        "wsdbm": WATDIV,
        "bio": BIO2RDF,
    }
)
