"""RDF term model: IRIs, literals, blank nodes, variables, and triples.

The dual-store structure manipulates knowledge graphs as sets of triples
``(subject, predicate, object)``.  This module defines the immutable value
objects those triples are made of.  Terms are hashable and totally ordered so
they can be used as dictionary keys, stored in sorted containers, and compared
deterministically in tests.

The model intentionally covers the subset of RDF 1.1 that the paper's
evaluation needs: IRIs, plain / typed / language-tagged literals, blank nodes,
and query variables (variables are not RDF terms proper, but modelling them
here lets triple *patterns* reuse the same machinery as concrete triples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import TermError

__all__ = [
    "Term",
    "IRI",
    "Literal",
    "BlankNode",
    "Variable",
    "Triple",
    "TermLike",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
]

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"

# Sort keys used to order heterogeneous terms deterministically.
_KIND_ORDER = {"iri": 0, "blank": 1, "literal": 2, "variable": 3}


class Term:
    """Common base class for every RDF term and for query variables."""

    __slots__ = ()

    #: subclasses override with one of ``iri``, ``literal``, ``blank``, ``variable``
    kind: str = "term"

    def n3(self) -> str:
        """Return the N-Triples / SPARQL surface syntax of the term."""
        raise NotImplementedError

    def sort_key(self) -> tuple:
        """Key that orders terms first by kind then by value."""
        return (_KIND_ORDER.get(self.kind, 99), str(self))

    @property
    def is_variable(self) -> bool:
        return self.kind == "variable"

    @property
    def is_concrete(self) -> bool:
        """True for terms that may appear in stored data (not variables)."""
        return self.kind != "variable"

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()


@dataclass(frozen=True, slots=True)
class IRI(Term):
    """An absolute IRI, e.g. ``http://yago-knowledge.org/resource/wasBornIn``."""

    value: str

    kind = "iri"

    def __post_init__(self) -> None:
        if not self.value:
            raise TermError("IRI value must be a non-empty string")
        if any(ch in self.value for ch in "<> \t\n"):
            raise TermError(f"IRI contains characters that are not allowed: {self.value!r}")

    def n3(self) -> str:
        return f"<{self.value}>"

    def local_name(self) -> str:
        """Return the fragment / last path segment, useful for display."""
        for sep in ("#", "/", ":"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Literal(Term):
    """An RDF literal with optional datatype or language tag."""

    lexical: str
    datatype: str = XSD_STRING
    language: str | None = None

    kind = "literal"

    def __post_init__(self) -> None:
        if self.language is not None and self.datatype != XSD_STRING:
            raise TermError("a language-tagged literal cannot also carry a datatype")
        if self.language is not None and not self.language:
            raise TermError("language tag must be non-empty when provided")

    @classmethod
    def from_python(cls, value: Union[str, int, float, bool]) -> "Literal":
        """Build a literal with the natural XSD datatype for a Python value."""
        if isinstance(value, bool):
            return cls("true" if value else "false", XSD_BOOLEAN)
        if isinstance(value, int):
            return cls(str(value), XSD_INTEGER)
        if isinstance(value, float):
            return cls(repr(value), XSD_DOUBLE)
        return cls(str(value), XSD_STRING)

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert back to the closest Python value for the datatype."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype == XSD_DOUBLE:
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.lexical


@dataclass(frozen=True, slots=True)
class BlankNode(Term):
    """An RDF blank node identified by a local label."""

    label: str

    kind = "blank"

    def __post_init__(self) -> None:
        if not self.label:
            raise TermError("blank node label must be non-empty")

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"_:{self.label}"


@dataclass(frozen=True, slots=True)
class Variable(Term):
    """A SPARQL query variable, e.g. ``?p``.  The name excludes the ``?``."""

    name: str

    kind = "variable"

    def __post_init__(self) -> None:
        if not self.name:
            raise TermError("variable name must be non-empty")
        if self.name.startswith("?") or self.name.startswith("$"):
            raise TermError("variable name must not include the ? or $ prefix")

    def n3(self) -> str:
        return f"?{self.name}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"?{self.name}"


TermLike = Union[IRI, Literal, BlankNode, Variable]


@dataclass(frozen=True, slots=True)
class Triple:
    """A concrete RDF triple (no variables allowed in any position)."""

    subject: TermLike
    predicate: TermLike
    object: TermLike

    def __post_init__(self) -> None:
        if self.subject.is_variable or self.predicate.is_variable or self.object.is_variable:
            raise TermError("a Triple must not contain variables; use sparql.TriplePattern instead")
        if not isinstance(self.predicate, IRI):
            raise TermError("the predicate of a triple must be an IRI")
        if isinstance(self.subject, Literal):
            raise TermError("the subject of a triple cannot be a literal")

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def as_tuple(self) -> tuple[TermLike, TermLike, TermLike]:
        return (self.subject, self.predicate, self.object)

    def __iter__(self) -> Iterator[TermLike]:
        return iter(self.as_tuple())

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.n3()
