"""Dictionary encoding of RDF terms to dense integer identifiers.

Both stores map terms to integers internally: the relational triple table
stores integer columns (far cheaper to join than long IRI strings), and the
graph store uses integer vertex identifiers for its adjacency lists.  The
:class:`TermDictionary` provides a shared, append-only bidirectional mapping.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import SnapshotIntegrityError, StorageError
from repro.rdf.terms import BlankNode, IRI, Literal, TermLike, Triple

__all__ = ["TermDictionary", "EncodedTriple", "term_to_payload", "term_from_payload"]


def term_to_payload(term: TermLike) -> list:
    """A JSON-serializable encoding of one concrete RDF term.

    Used by the durable-snapshot subsystem (:mod:`repro.persist`): the term
    dictionary is persisted as one payload per identifier, in identifier
    order, so a restore reassigns exactly the same dense ids.  Variables are
    never stored (they cannot occur in data).
    """
    if isinstance(term, IRI):
        return ["i", term.value]
    if isinstance(term, Literal):
        return ["l", term.lexical, term.datatype, term.language]
    if isinstance(term, BlankNode):
        return ["b", term.label]
    raise StorageError(f"term {term!r} cannot be persisted (kind {term.kind!r})")


def term_from_payload(payload: list) -> TermLike:
    """Inverse of :func:`term_to_payload`; raises on malformed payloads."""
    try:
        kind = payload[0]
        if kind == "i":
            return IRI(payload[1])
        if kind == "l":
            return Literal(payload[1], payload[2], payload[3])
        if kind == "b":
            return BlankNode(payload[1])
    except SnapshotIntegrityError:
        raise
    except Exception as exc:
        raise SnapshotIntegrityError(f"malformed term payload {payload!r}: {exc}") from exc
    raise SnapshotIntegrityError(f"unknown term payload kind {payload!r}")

#: A triple encoded as (subject_id, predicate_id, object_id).
EncodedTriple = Tuple[int, int, int]


class TermDictionary:
    """Bidirectional mapping between RDF terms and integer identifiers.

    Identifiers are assigned densely starting at 0 in first-seen order, so
    encoding the same data twice yields identical identifiers — important for
    deterministic tests and benchmarks.
    """

    def __init__(self) -> None:
        self._term_to_id: Dict[TermLike, int] = {}
        self._id_to_term: List[TermLike] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: TermLike) -> bool:
        return term in self._term_to_id

    def encode(self, term: TermLike) -> int:
        """Return the identifier for ``term``, assigning a new one if needed."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def encode_existing(self, term: TermLike) -> int:
        """Return the identifier for ``term`` or raise if it was never seen."""
        try:
            return self._term_to_id[term]
        except KeyError:
            raise StorageError(f"term {term!r} is not in the dictionary") from None

    def decode(self, term_id: int) -> TermLike:
        """Return the term for ``term_id``."""
        if not 0 <= term_id < len(self._id_to_term):
            raise StorageError(f"identifier {term_id} is outside the dictionary range")
        return self._id_to_term[term_id]

    def decode_many(self, term_ids: Iterable[int]) -> List[TermLike]:
        """Batch-decode identifiers in one pass.

        This is the late-materialization hook of the ID-space executor: the
        join pipeline runs entirely on integer identifiers and calls this
        once, at projection time, for the identifiers that survived.  Bounds
        are checked exactly like :meth:`decode`.
        """
        table = self._id_to_term
        size = len(table)
        out: List[TermLike] = []
        append = out.append
        for term_id in term_ids:
            if not 0 <= term_id < size:
                raise StorageError(f"identifier {term_id} is outside the dictionary range")
            append(table[term_id])
        return out

    def lookup(self, term: TermLike) -> int | None:
        """Return the identifier for ``term`` or ``None`` when unknown."""
        return self._term_to_id.get(term)

    def lookup_many(self, terms: Iterable[TermLike]) -> List[int | None]:
        """Batch :meth:`lookup`; one entry per term, ``None`` when unknown.

        Used to resolve a plan step's constants once per bound plan instead
        of once per scanned row.
        """
        get = self._term_to_id.get
        return [get(term) for term in terms]

    def encode_triple(self, triple: Triple) -> EncodedTriple:
        return (
            self.encode(triple.subject),
            self.encode(triple.predicate),
            self.encode(triple.object),
        )

    def decode_triple(self, encoded: EncodedTriple) -> Triple:
        subject_id, predicate_id, object_id = encoded
        return Triple(
            self.decode(subject_id),
            self.decode(predicate_id),  # type: ignore[arg-type]
            self.decode(object_id),
        )

    def encode_triples(self, triples: Iterable[Triple]) -> Iterator[EncodedTriple]:
        for triple in triples:
            yield self.encode_triple(triple)

    def terms(self) -> Iterator[TermLike]:
        return iter(self._id_to_term)

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> List[list]:
        """Every term, encoded, in identifier order (id 0 first)."""
        return [term_to_payload(term) for term in self._id_to_term]

    @classmethod
    def from_payload(cls, payload: Iterable[list]) -> "TermDictionary":
        """Rebuild a dictionary assigning ids in payload order.

        Because ids are dense and first-seen ordered, restoring the payload
        written by :meth:`to_payload` reproduces the exact term↔id mapping of
        the snapshotted dictionary — the property every persisted integer row
        depends on.
        """
        dictionary = cls()
        for entry in payload:
            dictionary.encode(term_from_payload(entry))
        return dictionary

    def items(self) -> Iterator[Tuple[TermLike, int]]:
        return iter(self._term_to_id.items())
