"""A small, strict N-Triples reader and writer.

The dataset generators can persist knowledge graphs to disk and the stores
can bulk-load them back; N-Triples is the line-oriented exchange format used
for that.  The implementation supports the full term model in
:mod:`repro.rdf.terms` (IRIs, plain / typed / language-tagged literals, blank
nodes) and reports parse failures with line numbers.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.errors import ParseError
from repro.rdf.terms import XSD_STRING, BlankNode, IRI, Literal, TermLike, Triple

__all__ = ["parse_ntriples", "parse_ntriples_file", "serialize_ntriples", "write_ntriples_file"]

_IRI_RE = re.compile(r"<([^<>\s]*)>")
_BLANK_RE = re.compile(r"_:([A-Za-z0-9_]+)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'  # lexical form with escapes
    r"(?:@([a-zA-Z][a-zA-Z0-9-]*)|\^\^<([^<>\s]*)>)?"  # optional language or datatype
)

_ESCAPES = {"\\n": "\n", "\\r": "\r", "\\t": "\t", '\\"': '"', "\\\\": "\\"}


def _unescape(lexical: str) -> str:
    out = []
    i = 0
    while i < len(lexical):
        if lexical[i] == "\\" and i + 1 < len(lexical):
            pair = lexical[i : i + 2]
            if pair in _ESCAPES:
                out.append(_ESCAPES[pair])
                i += 2
                continue
        out.append(lexical[i])
        i += 1
    return "".join(out)


def _parse_term(text: str, line_no: int) -> tuple[TermLike, str]:
    """Parse one term at the start of ``text``; return (term, remainder)."""
    text = text.lstrip()
    if not text:
        raise ParseError("unexpected end of line while reading a term", line=line_no)
    if text[0] == "<":
        match = _IRI_RE.match(text)
        if not match:
            raise ParseError(f"malformed IRI near {text[:40]!r}", line=line_no)
        return IRI(match.group(1)), text[match.end():]
    if text.startswith("_:"):
        match = _BLANK_RE.match(text)
        if not match:
            raise ParseError(f"malformed blank node near {text[:40]!r}", line=line_no)
        return BlankNode(match.group(1)), text[match.end():]
    if text[0] == '"':
        match = _LITERAL_RE.match(text)
        if not match:
            raise ParseError(f"malformed literal near {text[:40]!r}", line=line_no)
        lexical = _unescape(match.group(1))
        language = match.group(2)
        datatype = match.group(3)
        if language:
            literal = Literal(lexical, XSD_STRING, language)
        elif datatype:
            literal = Literal(lexical, datatype)
        else:
            literal = Literal(lexical)
        return literal, text[match.end():]
    raise ParseError(f"unrecognised term near {text[:40]!r}", line=line_no)


def parse_ntriples(source: Union[str, IO[str]]) -> Iterator[Triple]:
    """Yield triples from an N-Triples string or text stream.

    Blank lines and ``#`` comment lines are skipped.  Every other line must
    be a well-formed triple terminated by ``.``.
    """
    stream = io.StringIO(source) if isinstance(source, str) else source
    for line_no, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if not line.endswith("."):
            raise ParseError("triple line must end with '.'", line=line_no)
        body = line[:-1]
        subject, rest = _parse_term(body, line_no)
        predicate, rest = _parse_term(rest, line_no)
        obj, rest = _parse_term(rest, line_no)
        if rest.strip():
            raise ParseError(f"trailing content after triple: {rest.strip()!r}", line=line_no)
        if not isinstance(predicate, IRI):
            raise ParseError("triple predicate must be an IRI", line=line_no)
        yield Triple(subject, predicate, obj)


def parse_ntriples_file(path: Union[str, Path]) -> Iterator[Triple]:
    """Yield triples from an N-Triples file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from parse_ntriples(handle)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples string (one line per triple)."""
    return "".join(triple.n3() + "\n" for triple in triples)


def write_ntriples_file(triples: Iterable[Triple], path: Union[str, Path]) -> int:
    """Write triples to ``path``; return the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.n3() + "\n")
            count += 1
    return count
