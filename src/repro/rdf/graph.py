"""An in-memory set of triples with pattern-matching access paths.

:class:`TripleSet` is the neutral exchange format between the dataset
generators, the relational store loader, and the graph store loader.  It is
*not* one of the two stores of the dual-store structure; it is the "entire
knowledge graph" that both stores are loaded from, and the unit in which
triple partitions are shipped between them.

It maintains SPO/POS/OSP-style dictionary indexes so that membership tests
and per-predicate partition extraction are O(1)/O(partition) respectively.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import TermError
from repro.rdf.terms import IRI, Term, TermLike, Triple

__all__ = ["TripleSet"]


class TripleSet:
    """A mutable, indexed collection of concrete RDF triples."""

    def __init__(self, triples: Iterable[Triple] | None = None):
        self._triples: Set[Triple] = set()
        # predicate -> list of (subject, object); the primary partition index
        self._by_predicate: Dict[IRI, List[Tuple[TermLike, TermLike]]] = defaultdict(list)
        # subject -> triples and object -> triples for pattern matching
        self._by_subject: Dict[TermLike, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[TermLike, Set[Triple]] = defaultdict(set)
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, triple: Triple) -> bool:
        """Add a triple; return ``True`` if it was not already present."""
        if not isinstance(triple, Triple):
            raise TermError(f"expected a Triple, got {type(triple).__name__}")
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_predicate[triple.predicate].append((triple.subject, triple.object))
        self._by_subject[triple.subject].add(triple)
        self._by_object[triple.object].add(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple in ``triples``; return how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def discard(self, triple: Triple) -> bool:
        """Remove a triple if present; return ``True`` when removed."""
        if triple not in self._triples:
            return False
        self._triples.remove(triple)
        pairs = self._by_predicate[triple.predicate]
        pairs.remove((triple.subject, triple.object))
        if not pairs:
            del self._by_predicate[triple.predicate]
        self._by_subject[triple.subject].discard(triple)
        if not self._by_subject[triple.subject]:
            del self._by_subject[triple.subject]
        self._by_object[triple.object].discard(triple)
        if not self._by_object[triple.object]:
            del self._by_object[triple.object]
        return True

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: object) -> bool:
        return triple in self._triples

    @property
    def predicates(self) -> List[IRI]:
        """Every distinct predicate, in deterministic sorted order."""
        return sorted(self._by_predicate, key=lambda p: p.value)

    def predicate_count(self, predicate: IRI) -> int:
        """Number of triples whose predicate is ``predicate``."""
        return len(self._by_predicate.get(predicate, ()))

    def partition(self, predicate: IRI) -> List[Triple]:
        """All triples of one predicate — the paper's *triple partition*."""
        return [Triple(s, predicate, o) for s, o in self._by_predicate.get(predicate, ())]

    def subjects(self) -> Set[TermLike]:
        return set(self._by_subject)

    def objects(self) -> Set[TermLike]:
        return set(self._by_object)

    def entity_count(self) -> int:
        """``#-S ∪ O`` as reported in the paper's Table 3."""
        return len(self.subjects() | self.objects())

    def predicate_histogram(self) -> Dict[IRI, int]:
        """Map each predicate to its triple count (used for statistics)."""
        return {p: len(pairs) for p, pairs in self._by_predicate.items()}

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #
    def match(
        self,
        subject: Optional[TermLike] = None,
        predicate: Optional[IRI] = None,
        object: Optional[TermLike] = None,
    ) -> Iterator[Triple]:
        """Iterate triples matching the given concrete positions.

        ``None`` (or a :class:`~repro.rdf.terms.Variable`) acts as a wildcard.
        The most selective available index is chosen automatically.
        """
        subject = None if _is_wildcard(subject) else subject
        predicate = None if _is_wildcard(predicate) else predicate
        object = None if _is_wildcard(object) else object

        if subject is not None and subject in self._by_subject:
            candidates: Iterable[Triple] = self._by_subject[subject]
        elif subject is not None:
            return iter(())
        elif object is not None and object in self._by_object:
            candidates = self._by_object[object]
        elif object is not None:
            return iter(())
        elif predicate is not None:
            candidates = (Triple(s, predicate, o) for s, o in self._by_predicate.get(predicate, ()))
        else:
            candidates = self._triples

        def _filtered() -> Iterator[Triple]:
            for triple in candidates:
                if predicate is not None and triple.predicate != predicate:
                    continue
                if subject is not None and triple.subject != subject:
                    continue
                if object is not None and triple.object != object:
                    continue
                yield triple

        return _filtered()

    # ------------------------------------------------------------------ #
    # Set-like helpers
    # ------------------------------------------------------------------ #
    def copy(self) -> "TripleSet":
        return TripleSet(self._triples)

    def union(self, other: "TripleSet") -> "TripleSet":
        merged = self.copy()
        merged.add_all(other)
        return merged

    def subset_for_predicates(self, predicates: Iterable[IRI]) -> "TripleSet":
        """A new :class:`TripleSet` limited to the given predicates."""
        subset = TripleSet()
        for predicate in predicates:
            subset.add_all(self.partition(predicate))
        return subset

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleSet):
            return NotImplemented
        return self._triples == other._triples

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TripleSet({len(self._triples)} triples, {len(self._by_predicate)} predicates)"


def _is_wildcard(term: Optional[TermLike]) -> bool:
    return term is None or (isinstance(term, Term) and term.is_variable)
