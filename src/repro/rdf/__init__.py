"""RDF data model: terms, triples, namespaces, triple sets, and N-Triples IO."""

from repro.rdf.dictionary import EncodedTriple, TermDictionary
from repro.rdf.graph import TripleSet
from repro.rdf.namespace import (
    BIO2RDF,
    DEFAULT_PREFIXES,
    RDF,
    RDFS,
    WATDIV,
    XSD,
    YAGO,
    Namespace,
    PrefixMap,
)
from repro.rdf.ntriples import (
    parse_ntriples,
    parse_ntriples_file,
    serialize_ntriples,
    write_ntriples_file,
)
from repro.rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    Term,
    TermLike,
    Triple,
    Variable,
)

__all__ = [
    "BlankNode",
    "IRI",
    "Literal",
    "Term",
    "TermLike",
    "Triple",
    "Variable",
    "Namespace",
    "PrefixMap",
    "DEFAULT_PREFIXES",
    "YAGO",
    "RDF",
    "RDFS",
    "XSD",
    "WATDIV",
    "BIO2RDF",
    "TripleSet",
    "TermDictionary",
    "EncodedTriple",
    "parse_ntriples",
    "parse_ntriples_file",
    "serialize_ntriples",
    "write_ntriples_file",
]
