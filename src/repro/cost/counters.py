"""Work-unit counters recorded by both stores during query execution.

The paper measures wall-clock latency of MySQL and Neo4j on a dedicated
server.  This reproduction instead has every engine count the *work* it does
(rows scanned, tuples joined, edges traversed, triples migrated, ...) and a
calibrated :mod:`repro.cost.model` converts those counts into seconds.  The
counts themselves are deterministic, so every experiment is repeatable while
still exhibiting the cost asymmetry the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["WorkCounters"]


@dataclass
class WorkCounters:
    """Accumulated work units for one query (or one bulk operation).

    Relational-side counters
    ------------------------
    rows_scanned:
        Base-table rows read (sequential scan or index range scan).
    rows_joined:
        Intermediate tuples produced by join operators.
    index_lookups:
        Point lookups served by an index.
    view_rows_scanned:
        Rows read from materialized views (RDB-views variant).

    Graph-side counters
    -------------------
    nodes_expanded:
        Vertices whose adjacency list was opened during traversal.
    edges_traversed:
        Edges followed during traversal.

    Shared counters
    ---------------
    results_produced:
        Final solutions emitted.
    triples_migrated:
        Intermediate result rows shipped between stores by the query
        processor (Case 2 plans).
    triples_loaded:
        Triples bulk-imported into a store (partition transfer or initial
        load).
    """

    rows_scanned: int = 0
    rows_joined: int = 0
    index_lookups: int = 0
    view_rows_scanned: int = 0
    nodes_expanded: int = 0
    edges_traversed: int = 0
    results_produced: int = 0
    triples_migrated: int = 0
    triples_loaded: int = 0
    queries_issued: int = field(default=0)

    def merge(self, other: "WorkCounters") -> "WorkCounters":
        """Return a new counter object with both contributions summed."""
        merged = WorkCounters()
        for f in fields(WorkCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def add(self, other: "WorkCounters") -> None:
        """Accumulate ``other`` into this counter object in place."""
        for f in fields(WorkCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def total_units(self) -> int:
        """Sum of every counter; a crude magnitude used in sanity checks."""
        return sum(int(getattr(self, f.name)) for f in fields(WorkCounters))

    def as_dict(self) -> dict[str, int]:
        return {f.name: int(getattr(self, f.name)) for f in fields(WorkCounters)}

    def copy(self) -> "WorkCounters":
        clone = WorkCounters()
        clone.add(self)
        return clone
