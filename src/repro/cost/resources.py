"""Resource throttling model for the "limited spare resources" experiments.

Section 6.3.3 of the paper studies how the counterfactual parallel thread
(which re-runs complex queries in the relational store) competes with the
graph store for IO and CPU.  The authors throttle the machine to 40%/20%
spare IO or CPU and report (Table 6) the graph store's slowdown, plus
(Figure 7) the fraction of the spare resource the graph store consumes over
time.

We model this with a :class:`ResourceThrottle`: the graph store's service
rate is scaled by a factor derived from the spare-resource fraction, and each
query records a sample of how much of the spare resource it consumed.  The
constants reproduce the paper's shape — IO limits barely matter (the graph
store is memory-resident), CPU limits hurt more, and consumption spikes while
partitions are being migrated then settles at a small steady-state value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal

from repro.errors import ConfigError

__all__ = ["ResourceThrottle", "ResourceSample", "SlowdownReport"]

ResourceKind = Literal["io", "cpu"]


@dataclass(frozen=True)
class ResourceSample:
    """One time-series point for Figure 7: resource consumed at a time."""

    time: float
    io_percent: float
    cpu_percent: float


@dataclass(frozen=True)
class SlowdownReport:
    """Slowdown of the graph store under a given spare-resource budget."""

    resource: ResourceKind
    spare_fraction: float
    slowdown_percent: float


@dataclass
class ResourceThrottle:
    """Scales graph-store latency according to spare IO/CPU budgets.

    Parameters
    ----------
    spare_io, spare_cpu:
        Fractions in (0, 1] of the machine's IO / CPU left for the graph
        store while the counterfactual thread runs.  ``1.0`` means no
        contention.
    io_sensitivity, cpu_sensitivity:
        How strongly the graph store reacts to losing each resource.  The
        defaults are fitted to the paper's Table 6 (IO 20% → 0.30% slowdown,
        CPU 20% → 18% slowdown).
    """

    spare_io: float = 1.0
    spare_cpu: float = 1.0
    io_sensitivity: float = 0.00075
    cpu_sensitivity: float = 0.045
    samples: List[ResourceSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, value in (("spare_io", self.spare_io), ("spare_cpu", self.spare_cpu)):
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {value}")

    # ------------------------------------------------------------------ #
    # Slowdown
    # ------------------------------------------------------------------ #
    def slowdown_factor(self) -> float:
        """Multiplier (>= 1) applied to graph-store latency."""
        io_penalty = self.io_sensitivity * (1.0 / self.spare_io - 1.0)
        cpu_penalty = self.cpu_sensitivity * (1.0 / self.spare_cpu - 1.0)
        return 1.0 + io_penalty + cpu_penalty

    def slowdown_percent(self) -> float:
        """Slowdown as a percentage, the quantity reported in Table 6."""
        return (self.slowdown_factor() - 1.0) * 100.0

    def apply(self, graph_seconds: float) -> float:
        """Return the throttled latency for a graph-store operation."""
        return graph_seconds * self.slowdown_factor()

    def report(self) -> List[SlowdownReport]:
        """Table 6-style rows for the currently configured budgets."""
        rows: List[SlowdownReport] = []
        if self.spare_io < 1.0:
            only_io = ResourceThrottle(spare_io=self.spare_io, spare_cpu=1.0,
                                       io_sensitivity=self.io_sensitivity,
                                       cpu_sensitivity=self.cpu_sensitivity)
            rows.append(SlowdownReport("io", self.spare_io, only_io.slowdown_percent()))
        if self.spare_cpu < 1.0:
            only_cpu = ResourceThrottle(spare_io=1.0, spare_cpu=self.spare_cpu,
                                        io_sensitivity=self.io_sensitivity,
                                        cpu_sensitivity=self.cpu_sensitivity)
            rows.append(SlowdownReport("cpu", self.spare_cpu, only_cpu.slowdown_percent()))
        return rows

    # ------------------------------------------------------------------ #
    # Figure 7 time series
    # ------------------------------------------------------------------ #
    def record_activity(
        self,
        time: float,
        migrated_triples: int,
        graph_work_units: int,
    ) -> ResourceSample:
        """Record one sample of IO/CPU consumed by the graph store.

        Migration is IO-heavy (bulk import), query traversal is CPU-heavy.
        The percentages are of the *spare* resource budget, matching how the
        paper plots Figure 7.
        """
        io_used = min(100.0, 100.0 * migrated_triples / 50_000.0)
        cpu_used = min(100.0, 100.0 * graph_work_units / 2_000_000.0 + 2.0)
        sample = ResourceSample(time=time, io_percent=io_used, cpu_percent=cpu_used)
        self.samples.append(sample)
        return sample

    def timeline(self) -> List[ResourceSample]:
        """The recorded samples in chronological order."""
        return sorted(self.samples, key=lambda s: s.time)
