"""Deterministic cost accounting: work counters, latency model, clocks, throttles."""

from repro.cost.clock import Clock, SimulatedClock, Stopwatch, WallClock
from repro.cost.counters import WorkCounters
from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceSample, ResourceThrottle, SlowdownReport

__all__ = [
    "Clock",
    "SimulatedClock",
    "WallClock",
    "Stopwatch",
    "WorkCounters",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "ResourceThrottle",
    "ResourceSample",
    "SlowdownReport",
]
