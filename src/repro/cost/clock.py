"""Clocks used to attribute latency to queries and batches.

Two interchangeable clocks exist:

* :class:`SimulatedClock` — advances only when the library charges time to
  it (from the cost model).  Experiments run with this clock are fully
  deterministic and independent of the host machine.
* :class:`WallClock` — measures real elapsed time with
  :func:`time.perf_counter`; useful when benchmarking the actual Python
  engines with ``pytest-benchmark``.

Both expose the same tiny interface: ``now()``, ``charge(seconds)``, and a
``stopwatch()`` context manager returning elapsed seconds.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ConfigError

__all__ = ["Clock", "SimulatedClock", "WallClock", "Stopwatch"]


class Stopwatch:
    """Result holder for :meth:`Clock.stopwatch`."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0


class Clock:
    """Abstract clock interface."""

    def now(self) -> float:
        raise NotImplementedError

    def charge(self, seconds: float) -> None:
        """Attribute ``seconds`` of latency to the clock."""
        raise NotImplementedError

    @contextmanager
    def stopwatch(self) -> Iterator[Stopwatch]:
        """Measure the time that passes (or is charged) inside the block."""
        watch = Stopwatch()
        start = self.now()
        try:
            yield watch
        finally:
            watch.elapsed = self.now() - start


class SimulatedClock(Clock):
    """A deterministic clock that only advances when time is charged."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigError("simulated clock cannot start before time 0")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError("cannot charge negative time")
        self._now += seconds

    def reset(self, start: float = 0.0) -> None:
        self._now = float(start)


class WallClock(Clock):
    """A clock backed by the host's monotonic performance counter.

    ``charge`` is a no-op because real time passes on its own; the method
    exists so callers can treat both clock types uniformly.
    """

    def now(self) -> float:
        return time.perf_counter()

    def charge(self, seconds: float) -> None:
        # Real time already elapsed while the work was performed.
        return None
