"""Latency model converting work counters into seconds.

The per-unit constants are calibrated against the paper's Table 1, which
reports the latency of one complex query (three joins) over a YAGO subset in
MySQL and Neo4j as the triple count grows from 500k to 5M:

* MySQL grows roughly linearly from ~11 s (500k triples) to ~99 s (5M
  triples).  The query's joins touch roughly 40% of the triple table, so the
  per-scanned-row cost comes out to ≈50 µs — the ``relational_row_scan``
  default.
* Neo4j stays between 0.6 s and 4 s regardless of total size: a fixed
  overhead plus a few µs per traversed edge, where the number of traversed
  edges depends on the query's neighbourhood rather than the graph size.

The fixed per-query overheads (connection/parse/plan setup) are scaled down
by roughly the same factor as the datasets themselves (the synthetic
workloads are ~100–1000× smaller than the paper's), so the crossover
behaviour — the graph store paying off for complex queries, the relational
store winning simple lookups — lands at the same *relative* position.

The model prices **logical work counters only**.  Both relational engines —
the ID-space late-materialization executor and the retained decode-per-row
reference executor — charge every counter at the same pipeline points (per
row an access path yields, per tuple a join produces, per logical index
lookup, per emitted result), so the modelled seconds of a query are
*engine-invariant by construction*: swapping engines changes wall-clock,
never a single modelled number.  ``tests/test_differential_engine.py`` pins
this bit-identity.
Absolute values are irrelevant for the reproduction (our substrate is a
simulator, not the authors' testbed); what matters is that the *relative*
behaviour — relational cost scaling with data size, graph cost scaling with
traversal size, bulk import into the graph store being expensive — matches
the paper.  All constants can be overridden per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cost.counters import WorkCounters

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Per-work-unit latencies (seconds) plus fixed per-query overheads."""

    # Relational store (MySQL stand-in)
    relational_row_scan: float = 5.0e-5
    relational_row_join: float = 1.0e-5
    relational_index_lookup: float = 1.0e-5
    relational_view_row_scan: float = 6.0e-5
    relational_query_overhead: float = 0.002
    relational_insert_per_triple: float = 2.0e-6

    # Graph store (Neo4j stand-in)
    graph_node_expand: float = 2.0e-6
    graph_edge_traverse: float = 5.0e-6
    graph_query_overhead: float = 0.002
    graph_import_per_triple: float = 5.0e-5
    graph_evict_per_triple: float = 5.0e-6
    graph_restart_overhead: float = 5.0

    # Cross-store data movement (intermediate results, Case 2 plans)
    migration_per_row: float = 2.0e-5
    migration_overhead: float = 0.001

    # Result materialisation, common to both stores
    result_per_row: float = 1.0e-6

    # ------------------------------------------------------------------ #
    # Query latencies
    # ------------------------------------------------------------------ #
    def relational_query_seconds(self, counters: WorkCounters) -> float:
        """Latency of a query answered entirely by the relational store."""
        return (
            self.relational_query_overhead
            + counters.rows_scanned * self.relational_row_scan
            + counters.rows_joined * self.relational_row_join
            + counters.index_lookups * self.relational_index_lookup
            + counters.view_rows_scanned * self.relational_view_row_scan
            + counters.results_produced * self.result_per_row
        )

    def graph_query_seconds(self, counters: WorkCounters) -> float:
        """Latency of a query answered entirely by the graph store."""
        return (
            self.graph_query_overhead
            + counters.nodes_expanded * self.graph_node_expand
            + counters.edges_traversed * self.graph_edge_traverse
            + counters.results_produced * self.result_per_row
        )

    def migration_seconds(self, rows: int) -> float:
        """Latency of shipping ``rows`` intermediate results between stores."""
        if rows <= 0:
            return 0.0
        return self.migration_overhead + rows * self.migration_per_row

    def relational_scan_seconds(self, rows_scanned: int, index_lookups: int = 0) -> float:
        """Price of the scan/index share of relational work, no fixed overhead.

        This is the unit the sharded store's scatter-gather accounting works
        in: one shard's probe of one plan step costs
        ``relational_scan_seconds(rows, lookups)``, and a step's *parallel*
        cost is the max of its probe costs while its *total work* is their
        sum (see :meth:`scatter_gather_seconds`).
        """
        return (
            rows_scanned * self.relational_row_scan
            + index_lookups * self.relational_index_lookup
        )

    def scatter_gather_seconds(self, step_shard_costs, central_counters: WorkCounters) -> float:
        """Modelled parallel wall-clock of one scatter-gather execution.

        ``step_shard_costs`` is one sequence per plan step containing the
        priced probe cost of every shard that step touched; shards probe
        concurrently, so each step contributes the *max* of its probe costs
        (with one shard this degenerates to the serial sum).
        ``central_counters`` hold the coordinator's serial share — join work,
        migrated-table scans, and result materialisation — which is priced
        exactly like :meth:`relational_query_seconds` prices it.  The fixed
        per-query overhead is charged once, not per shard.
        """
        # One pricing polynomial: the central share reuses the serial query
        # pricing verbatim (which also charges the fixed overhead once), so
        # the two paths can never drift apart.
        parallel = self.relational_query_seconds(central_counters)
        for shard_costs in step_shard_costs:
            if shard_costs:
                parallel += max(shard_costs)
        return parallel

    # ------------------------------------------------------------------ #
    # Bulk operations
    # ------------------------------------------------------------------ #
    def graph_import_seconds(self, triples: int, restart: bool = False) -> float:
        """Latency of bulk-loading triples into the graph store.

        Neo4j's import path is the paper's motivation for keeping the master
        copy in the relational store: loading is slow and changing data may
        require a restart.  ``restart=True`` adds that fixed penalty.
        """
        cost = triples * self.graph_import_per_triple
        if restart:
            cost += self.graph_restart_overhead
        return cost

    def graph_evict_seconds(self, triples: int) -> float:
        """Latency of dropping a partition from the graph store.

        Eviction is priced an order of magnitude cheaper than import (deleting
        edges needs no index rebuild), but it is not free: the adaptive tuning
        daemon accounts both directions of a move symmetrically.
        """
        return triples * self.graph_evict_per_triple

    def relational_insert_seconds(self, triples: int) -> float:
        """Latency of inserting triples into the relational store."""
        return triples * self.relational_insert_per_triple

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every latency multiplied by ``factor``."""
        updates = {
            name: getattr(self, name) * factor
            for name in (
                "relational_row_scan",
                "relational_row_join",
                "relational_index_lookup",
                "relational_view_row_scan",
                "relational_query_overhead",
                "relational_insert_per_triple",
                "graph_node_expand",
                "graph_edge_traverse",
                "graph_query_overhead",
                "graph_import_per_triple",
                "graph_evict_per_triple",
                "graph_restart_overhead",
                "migration_per_row",
                "migration_overhead",
                "result_per_row",
            )
        }
        return replace(self, **updates)


#: The model used everywhere unless an experiment overrides it.
DEFAULT_COST_MODEL = CostModel()
