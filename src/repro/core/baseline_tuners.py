"""Baseline tuning policies the paper compares DOTIL against (Section 6.4).

* **One-off mode** — foresees the *whole* workload, tunes the physical design
  once at the beginning, and never changes it again.
* **LRU policy** — after each batch, transfers the most frequent partitions of
  the historical workload, evicting the least recently used ones to make room.
* **Ideal mode** — foresees the *next* batch and tunes the design beforehand;
  this is DOTIL's unreachable upper bound.
* **Static (no-op) mode** — never transfers anything; the dual store behaves
  like RDB-only.  Useful as a sanity baseline in tests.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Dict, List, Sequence

from repro.errors import StorageBudgetExceeded
from repro.rdf.terms import IRI

from repro.core.dualstore import DualStore
from repro.core.identifier import ComplexSubquery
from repro.core.tuner import BaseTuner, TuningReport

__all__ = ["OneOffTuner", "LRUTuner", "IdealTuner", "StaticTuner"]


def _partition_frequencies(subqueries: Sequence[ComplexSubquery]) -> Counter:
    """How many complex subqueries mention each predicate."""
    counts: Counter = Counter()
    for subquery in subqueries:
        for predicate in subquery.predicates:
            counts[predicate] += 1
    return counts


def _greedy_selection(dual: DualStore, ranked: List[IRI]) -> List[IRI]:
    """Pick partitions in ranked order while they fit the storage budget."""
    design = dual.design
    assert design is not None
    budget = design.storage_budget
    selected: List[IRI] = []
    used = 0
    for predicate in ranked:
        size = design.partition_sizes.get(predicate)
        if size is None:
            continue
        if used + size <= budget:
            selected.append(predicate)
            used += size
    return selected


def _apply_target_set(dual: DualStore, target: List[IRI], report: TuningReport) -> None:
    """Ensure the graph store holds ``target``, evicting only when needed.

    Resident partitions outside the target are kept as long as they fit; they
    are evicted (in reverse priority order) only to make room for missing
    target partitions.
    """
    design = dual.design
    assert design is not None
    target_set = set(target)
    missing = [p for p in target if p not in design.graph_partitions]
    needed = sum(design.partition_sizes.get(p, 0) for p in missing)

    if needed > design.remaining_budget():
        evictable = sorted(design.graph_partitions - target_set, key=lambda p: p.value)
        for predicate in evictable:
            if needed <= design.remaining_budget():
                break
            report.evict_seconds += dual.evict_partition(predicate)
            report.evicted.append(predicate)

    for predicate in target:
        if predicate in design.graph_partitions:
            report.kept.append(predicate)
            continue
        try:
            report.import_seconds += dual.transfer_partition(predicate)
            report.transferred.append(predicate)
        except StorageBudgetExceeded:
            report.kept.append(predicate)


class OneOffTuner(BaseTuner):
    """Tunes once, up front, using knowledge of the whole future workload."""

    name = "one-off"

    def __init__(self, dual: DualStore):
        super().__init__(dual)
        self._tuned = False

    def prepare(self, all_complex_subqueries: Sequence[ComplexSubquery]) -> None:
        if self._tuned:
            return
        frequencies = _partition_frequencies(all_complex_subqueries)
        design = self.dual.design
        assert design is not None
        # Rank by frequency per stored triple: frequently used, small partitions first.
        ranked = sorted(
            frequencies,
            key=lambda p: (-frequencies[p] / max(1, design.partition_sizes.get(p, 1)), p.value),
        )
        report = TuningReport()
        _apply_target_set(self.dual, _greedy_selection(self.dual, ranked), report)
        self._tuned = True

    def tune(
        self,
        recent: Sequence[ComplexSubquery],
        upcoming: Sequence[ComplexSubquery] | None = None,
    ) -> TuningReport:
        # Static after the initial tuning: the design never changes again.
        return TuningReport(kept=sorted(self.dual.design.graph_partitions, key=lambda p: p.value)
                            if self.dual.design else [])


class LRUTuner(BaseTuner):
    """Frequency-driven transfers with least-recently-used eviction."""

    name = "lru"

    def __init__(self, dual: DualStore):
        super().__init__(dual)
        self._history: Counter = Counter()
        self._recency: "OrderedDict[IRI, int]" = OrderedDict()
        self._clock = 0

    def tune(
        self,
        recent: Sequence[ComplexSubquery],
        upcoming: Sequence[ComplexSubquery] | None = None,
    ) -> TuningReport:
        report = TuningReport()
        design = self.dual.design
        assert design is not None

        for subquery in recent:
            self._clock += 1
            for predicate in subquery.predicates:
                self._history[predicate] += 1
                self._recency[predicate] = self._clock
                self._recency.move_to_end(predicate)

        ranked = sorted(
            self._history,
            key=lambda p: (-self._history[p], -self._recency.get(p, 0), p.value),
        )
        desired = _greedy_selection(self.dual, ranked)

        # Evict current residents that fell out of the desired set, least
        # recently used first.
        to_evict = sorted(
            design.graph_partitions - set(desired),
            key=lambda p: (self._recency.get(p, 0), p.value),
        )
        for predicate in to_evict:
            report.evict_seconds += self.dual.evict_partition(predicate)
            report.evicted.append(predicate)

        for predicate in desired:
            if predicate in design.graph_partitions:
                report.kept.append(predicate)
                continue
            try:
                report.import_seconds += self.dual.transfer_partition(predicate)
                report.transferred.append(predicate)
            except StorageBudgetExceeded:
                report.kept.append(predicate)
        report.trained_subqueries = len(recent)
        return report


class IdealTuner(BaseTuner):
    """Foresees the next batch and prepares the graph store for it."""

    name = "ideal"

    def tune(
        self,
        recent: Sequence[ComplexSubquery],
        upcoming: Sequence[ComplexSubquery] | None = None,
    ) -> TuningReport:
        report = TuningReport()
        source = upcoming if upcoming else recent
        frequencies = _partition_frequencies(source)
        design = self.dual.design
        assert design is not None
        ranked = sorted(
            frequencies,
            key=lambda p: (-frequencies[p] / max(1, design.partition_sizes.get(p, 1)), p.value),
        )
        _apply_target_set(self.dual, _greedy_selection(self.dual, ranked), report)
        report.trained_subqueries = len(source)
        return report


class StaticTuner(BaseTuner):
    """Never changes the physical design (RDB-only behaviour)."""

    name = "static"

    def tune(
        self,
        recent: Sequence[ComplexSubquery],
        upcoming: Sequence[ComplexSubquery] | None = None,
    ) -> TuningReport:
        return TuningReport()
