"""Configuration of the dual-store structure and the DOTIL tuner.

The paper's Table 4 lists the tuner's five parameters and their default
values; Table 5 sweeps each one and Section 6.3.1 picks the final settings.
Both sets are provided here as ready-made configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["DotilConfig", "DEFAULT_CONFIG", "PAPER_TUNED_CONFIG"]


@dataclass(frozen=True)
class DotilConfig:
    """Parameters of the dual-store structure and its tuner.

    Attributes
    ----------
    r_bg:
        Ratio of the graph-store storage budget ``B_G`` to the size of the
        entire knowledge graph (the paper's ``rB_G``).
    prob:
        Initial probability of transferring a partition whose Q-values are
        still all zero (cold-start exploration).
    alpha:
        Q-learning learning rate.
    gamma:
        Q-learning discount factor.
    lam:
        The counterfactual cap: the relational run of a complex subquery is
        stopped once its cost reaches ``lam`` times the graph-store cost.
    seed:
        Seed for the tuner's exploration randomness, so experiments are
        reproducible.
    """

    r_bg: float = 0.25
    prob: float = 0.5
    alpha: float = 0.5
    gamma: float = 0.5
    lam: float = 3.5
    seed: int = 20120613

    def __post_init__(self) -> None:
        if not 0.0 < self.r_bg <= 1.0:
            raise ConfigError(f"r_bg must be in (0, 1], got {self.r_bg}")
        if not 0.0 <= self.prob <= 1.0:
            raise ConfigError(f"prob must be in [0, 1], got {self.prob}")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {self.alpha}")
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigError(f"gamma must be in [0, 1), got {self.gamma}")
        if self.lam < 1.0:
            raise ConfigError(f"lam must be at least 1, got {self.lam}")

    def with_overrides(self, **overrides) -> "DotilConfig":
        """Return a copy with some parameters replaced (validated again)."""
        return replace(self, **overrides)


#: The paper's Table 4 default values (used while sweeping each parameter).
DEFAULT_CONFIG = DotilConfig()

#: The values Section 6.3.1 settles on after the Table 5 sweep.
PAPER_TUNED_CONFIG = DotilConfig(r_bg=0.25, prob=0.9, alpha=0.5, gamma=0.7, lam=4.5)
