"""DOTIL — the Dual-stOre Tuner based on reInforcement Learning (Section 4).

DOTIL is invoked periodically (offline, between batches).  For every complex
subquery in the most recent batch it decides whether the triple partitions
that subquery needs are worth transferring into the graph store, using one
2×2 Q-matrix per partition (the state-space decomposition) and rewards
derived from a counterfactual relational run capped at ``λ·c₁``.

The implementation follows the paper's Algorithm 1 (the outer tuning loop,
including budget-driven eviction ordered by ``Q(1,1) − Q(1,0)``) and
Algorithm 2 (``LearningProc``: execute in the graph store, cap the relational
counterfactual, amortise the reward over the partitions by their predicate
proportion in the subquery, update each Q-matrix with Equation 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import StorageBudgetExceeded, TuningError
from repro.rdf.terms import IRI
from repro.sparql.ast import SelectQuery

from repro.core.config import DEFAULT_CONFIG, DotilConfig
from repro.core.dualstore import DualStore
from repro.core.identifier import ComplexSubquery
from repro.core.qlearning import ACTION_KEEP, ACTION_MOVE, QTable, STATE_GRAPH, STATE_RELATIONAL

__all__ = ["Dotil", "TuningReport", "BaseTuner"]


@dataclass
class TuningReport:
    """What one offline tuning phase did."""

    transferred: List[IRI] = field(default_factory=list)
    evicted: List[IRI] = field(default_factory=list)
    kept: List[IRI] = field(default_factory=list)
    trained_subqueries: int = 0
    import_seconds: float = 0.0
    evict_seconds: float = 0.0
    qmatrix_sum: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)

    @property
    def moves(self) -> int:
        """Physical moves this phase applied (transfers plus evictions)."""
        return len(self.transferred) + len(self.evicted)

    def merge(self, other: "TuningReport") -> "TuningReport":
        return TuningReport(
            transferred=self.transferred + other.transferred,
            evicted=self.evicted + other.evicted,
            kept=self.kept + other.kept,
            trained_subqueries=self.trained_subqueries + other.trained_subqueries,
            import_seconds=self.import_seconds + other.import_seconds,
            evict_seconds=self.evict_seconds + other.evict_seconds,
            qmatrix_sum=other.qmatrix_sum or self.qmatrix_sum,
        )


class BaseTuner:
    """Common interface for DOTIL and the baseline tuning policies.

    A tuner observes the most recent batch of complex subqueries and mutates
    the dual store's physical design.  ``upcoming`` is only used by policies
    that are allowed to look into the future (the paper's *ideal mode*);
    DOTIL and the other online policies ignore it.
    """

    name = "base"

    def __init__(self, dual: DualStore):
        self.dual = dual

    def prepare(self, all_complex_subqueries: Sequence[ComplexSubquery]) -> None:
        """Hook called once before the first batch (used by one-off mode)."""

    def tune(
        self,
        recent: Sequence[ComplexSubquery],
        upcoming: Sequence[ComplexSubquery] | None = None,
    ) -> TuningReport:
        raise NotImplementedError


class Dotil(BaseTuner):
    """The reinforcement-learning dual-store tuner."""

    name = "dotil"

    def __init__(self, dual: DualStore, config: DotilConfig | None = None):
        super().__init__(dual)
        self.config = config or dual.config or DEFAULT_CONFIG
        self.qtable = QTable()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def tune(
        self,
        recent: Sequence[ComplexSubquery],
        upcoming: Sequence[ComplexSubquery] | None = None,
    ) -> TuningReport:
        """Run one offline tuning phase over the most recent batch."""
        design = self.dual.design
        if design is None:
            raise TuningError("the dual store must be loaded before tuning")

        report = TuningReport()
        for complex_subquery in recent:
            self._tune_for_subquery(complex_subquery, report)
        report.qmatrix_sum = self.qtable.summed()
        return report

    def _tune_for_subquery(self, complex_subquery: ComplexSubquery, report: TuningReport) -> None:
        design = self.dual.design
        assert design is not None
        subquery = complex_subquery.query
        needed = self._partitions_for(complex_subquery)
        if not needed:
            return

        in_graph = design.graph_partitions

        # Lines 5-7: everything already there -> just keep training.
        if set(needed) <= in_graph:
            self._learning_proc(subquery, needed, STATE_GRAPH, ACTION_KEEP)
            report.trained_subqueries += 1
            report.kept.extend(needed)
            return

        # Lines 9-11: the partitions that still have to move.
        missing = [p for p in needed if p not in in_graph]

        # Lines 12-15: compare the summed Q-values of keeping vs transferring.
        q_keep = sum(self.qtable.matrix(p).get(STATE_RELATIONAL, ACTION_KEEP) for p in missing)
        q_move = sum(self.qtable.matrix(p).get(STATE_RELATIONAL, ACTION_MOVE) for p in missing)

        if q_keep == 0.0 and q_move == 0.0:
            # Cold start: transfer with probability ``prob`` (Section 4.2.2).
            if self._rng.random() >= self.config.prob:
                report.kept.extend(missing)
                return
        elif q_keep >= q_move:
            # Lines 16-17: keeping looks at least as good; do nothing.
            report.kept.extend(missing)
            return

        # Lines 18-27: make room if the missing partitions do not fit.
        missing_size = sum(design.size_of(p) for p in missing)
        if missing_size > design.storage_budget:
            # The partition set can never fit; leave the design unchanged.
            report.kept.extend(missing)
            return
        if missing_size > design.remaining_budget():
            self._evict_until_fits(missing_size, protected=set(needed), report=report)
            if missing_size > design.remaining_budget():
                report.kept.extend(missing)
                return

        # Lines 28-29: migrate.
        for predicate in missing:
            report.import_seconds += self.dual.transfer_partition(predicate)
            report.transferred.append(predicate)

        # Lines 30-31: train the transferred partitions with (s=0, a=1) and the
        # partitions that were already resident with (s=1, a=0).
        self._learning_proc(subquery, missing, STATE_RELATIONAL, ACTION_MOVE)
        already_there = [p for p in needed if p not in missing]
        if already_there:
            self._learning_proc(subquery, already_there, STATE_GRAPH, ACTION_KEEP)
        report.trained_subqueries += 1

    def _evict_until_fits(self, required: int, protected: set[IRI], report: TuningReport) -> None:
        """Lines 19-27: evict resident partitions in ``Q(1,1) − Q(1,0)`` order."""
        design = self.dual.design
        assert design is not None
        candidates = [p for p in design.graph_partitions if p not in protected]
        candidates.sort(key=lambda p: (-self.qtable.matrix(p).eviction_key(), p.value))
        for predicate in candidates:
            if required <= design.remaining_budget():
                break
            report.evict_seconds += self.dual.evict_partition(predicate)
            report.evicted.append(predicate)

    # ------------------------------------------------------------------ #
    # Algorithm 2 — LearningProc
    # ------------------------------------------------------------------ #
    def _learning_proc(
        self,
        subquery: SelectQuery,
        partitions: Sequence[IRI],
        state: int,
        action: int,
    ) -> None:
        """Execute the subquery, compute amortised rewards, update Q-matrices."""
        if not partitions:
            return
        c1, _result = self.dual.graph_cost(subquery)
        cap = self.config.lam * c1
        c2 = self.dual.counterfactual_relational_cost(subquery, cap_seconds=cap)

        proportions = self._predicate_proportions(subquery)
        for predicate in partitions:
            delta = proportions.get(predicate, 0.0)
            reward = (c2 - c1) * delta
            self.qtable.matrix(predicate).update(
                state, action, reward, alpha=self.config.alpha, gamma=self.config.gamma
            )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _partitions_for(self, complex_subquery: ComplexSubquery) -> List[IRI]:
        """``Tc``: the partitions (predicates) the subquery needs, known to the KG."""
        design = self.dual.design
        assert design is not None
        known = design.relational_partitions
        return sorted((p for p in complex_subquery.predicates if p in known), key=lambda p: p.value)

    @staticmethod
    def _predicate_proportions(subquery: SelectQuery) -> Dict[IRI, float]:
        """``δ(Pi)``: each predicate's share of the subquery's patterns."""
        concrete = [p.predicate for p in subquery.patterns if isinstance(p.predicate, IRI)]
        if not concrete:
            return {}
        total = len(concrete)
        proportions: Dict[IRI, float] = {}
        for predicate in concrete:
            proportions[predicate] = proportions.get(predicate, 0.0) + 1.0 / total
        return proportions

    # ------------------------------------------------------------------ #
    # Warm-up (Section 4.2.2: "we prefer to warm up DOTIL with historical queries")
    # ------------------------------------------------------------------ #
    def warm_up(self, historical: Iterable[ComplexSubquery]) -> TuningReport:
        """Pre-train the Q-matrices on historical complex subqueries."""
        return self.tune(list(historical))

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """The tuner's learned state: every Q-matrix plus the exploration RNG.

        Restoring both means a warm-restarted tuner continues *exactly* where
        the snapshotted one stopped — same Q-values, same future exploration
        coin flips — instead of re-learning from a cold table.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "name": self.name,
            "qtable": self.qtable.to_payload(),
            "rng": [version, list(internal), gauss_next],
        }

    def restore_state(self, state: dict) -> None:
        self.qtable = QTable.from_payload(state["qtable"])
        version, internal, gauss_next = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss_next))
