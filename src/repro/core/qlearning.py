"""Q-learning machinery for the dual-store tuner (Section 4.2).

The decomposition strategy gives every triple partition its own tiny MDP:

* state space ``{0, 1}`` — 0: the partition lives only in the relational
  store, 1: it is replicated in the graph store;
* action space ``{0, 1}`` — 0: keep the current placement, 1: transfer (when
  in state 0) or evict (when in state 1);
* a 2×2 Q-matrix per partition, updated with the standard Q-learning rule
  (Equation 4 of the paper).  ``Q(0,0)`` and ``Q(1,1)`` are pinned to zero as
  the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import TuningError
from repro.rdf.terms import IRI

__all__ = ["QMatrix", "QTable", "STATE_RELATIONAL", "STATE_GRAPH", "ACTION_KEEP", "ACTION_MOVE"]

STATE_RELATIONAL = 0
STATE_GRAPH = 1
ACTION_KEEP = 0
ACTION_MOVE = 1


@dataclass
class QMatrix:
    """The 2×2 Q-matrix of one triple partition.

    The four entries follow the paper's layout:

    * ``Q(0,0)`` — keep the partition in the relational store (pinned to 0).
    * ``Q(0,1)`` — transfer it to the graph store.
    * ``Q(1,0)`` — keep it in the graph store (accumulates since migration).
    * ``Q(1,1)`` — evict it from the graph store (pinned to 0).
    """

    values: List[List[float]] = field(default_factory=lambda: [[0.0, 0.0], [0.0, 0.0]])
    updates: int = 0

    def get(self, state: int, action: int) -> float:
        self._validate(state, action)
        return self.values[state][action]

    def set(self, state: int, action: int, value: float) -> None:
        self._validate(state, action)
        self.values[state][action] = float(value)

    def update(self, state: int, action: int, reward: float, alpha: float, gamma: float) -> float:
        """Apply Equation 4 and return the new Q-value.

        The next state follows deterministically from (state, action): moving
        flips the placement, keeping preserves it.  The pinned entries
        ``Q(0,0)`` and ``Q(1,1)`` are never updated (their reward is defined
        as zero in the paper), but calling update on them is not an error —
        it simply leaves them at zero so Algorithm 1 stays straightforward.
        """
        self._validate(state, action)
        if (state, action) in ((STATE_RELATIONAL, ACTION_KEEP), (STATE_GRAPH, ACTION_MOVE)):
            self.updates += 1
            return self.values[state][action]
        next_state = state if action == ACTION_KEEP else 1 - state
        best_future = max(self.values[next_state])
        old_value = self.values[state][action]
        new_value = (1.0 - alpha) * old_value + alpha * (reward + gamma * best_future)
        self.values[state][action] = new_value
        self.updates += 1
        return new_value

    def transfer_margin(self) -> float:
        """How much better transferring looks than keeping in relational."""
        return self.get(STATE_RELATIONAL, ACTION_MOVE) - self.get(STATE_RELATIONAL, ACTION_KEEP)

    def eviction_key(self) -> float:
        """The paper's eviction sort key ``Q(1,1) - Q(1,0)``.

        Partitions are evicted in *descending* order of this key, i.e. the
        ones with the smallest accumulated keep-reward go first.
        """
        return self.get(STATE_GRAPH, ACTION_MOVE) - self.get(STATE_GRAPH, ACTION_KEEP)

    def is_cold(self) -> bool:
        """True when no informative entry has been learned yet."""
        return (
            self.get(STATE_RELATIONAL, ACTION_MOVE) == 0.0
            and self.get(STATE_GRAPH, ACTION_KEEP) == 0.0
        )

    def flatten(self) -> Tuple[float, float, float, float]:
        """``(Q00, Q01, Q10, Q11)`` — the order used in the paper's Table 5."""
        return (
            self.values[0][0],
            self.values[0][1],
            self.values[1][0],
            self.values[1][1],
        )

    def total(self) -> float:
        """Sum of all entries; the paper's offline-training-effect metric."""
        return sum(self.flatten())

    @staticmethod
    def _validate(state: int, action: int) -> None:
        if state not in (0, 1) or action not in (0, 1):
            raise TuningError(f"state and action must be 0 or 1, got ({state}, {action})")


class QTable:
    """The collection of per-partition Q-matrices."""

    def __init__(self) -> None:
        self._matrices: Dict[IRI, QMatrix] = {}

    def matrix(self, predicate: IRI) -> QMatrix:
        """The Q-matrix for a partition, created zero-initialised on demand."""
        if predicate not in self._matrices:
            self._matrices[predicate] = QMatrix()
        return self._matrices[predicate]

    def __contains__(self, predicate: IRI) -> bool:
        return predicate in self._matrices

    def __len__(self) -> int:
        return len(self._matrices)

    def items(self) -> Iterator[Tuple[IRI, QMatrix]]:
        return iter(self._matrices.items())

    def summed(self) -> Tuple[float, float, float, float]:
        """Element-wise sum across all partitions (Table 5's Q-matrix column)."""
        totals = [0.0, 0.0, 0.0, 0.0]
        for matrix in self._matrices.values():
            for index, value in enumerate(matrix.flatten()):
                totals[index] += value
        return tuple(totals)  # type: ignore[return-value]

    def total(self) -> float:
        return sum(self.summed())

    def reset(self) -> None:
        self._matrices.clear()

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> List[list]:
        """Per-partition matrices as ``[predicate, (Q00,Q01,Q10,Q11), updates]``,
        in insertion order (deterministic restore)."""
        return [
            [predicate.value, list(matrix.flatten()), matrix.updates]
            for predicate, matrix in self._matrices.items()
        ]

    @classmethod
    def from_payload(cls, payload: List[list]) -> "QTable":
        table = cls()
        for value, flat, updates in payload:
            matrix = table.matrix(IRI(value))
            matrix.values = [[float(flat[0]), float(flat[1])], [float(flat[2]), float(flat[3])]]
            matrix.updates = int(updates)
        return table
