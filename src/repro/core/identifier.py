"""Complex subquery identifier (Section 3.1 of the paper).

A *complex subquery* is the set of triple patterns whose subject variable and
object variable both occur more than once in the query.  In the paper's
Example 1, patterns ``q3..q7`` form the complex subquery because each of
``?p``, ``?city``, ``?a``, and ``?p2`` occurs more than once, while ``q1`` and
``q2`` are excluded because ``?GivenName`` / ``?FamilyName`` occur only once.

The identifier runs in one pass over the patterns (the paper's O(n) bound,
with n proportional to the number of subqueries) and produces a
:class:`ComplexSubquery` carrying

* the member patterns,
* the *output variables* — the variables shared with the remaining part of
  the query (these join the two halves of a split plan), and
* a ready-to-execute :class:`~repro.sparql.ast.SelectQuery` projecting those
  output variables (``SELECT ?p WHERE {...}`` in Example 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.rdf.terms import IRI, Variable
from repro.sparql.ast import SelectQuery, TriplePattern

__all__ = ["ComplexSubquery", "ComplexSubqueryIdentifier", "identify_complex_subquery"]


@dataclass(frozen=True)
class ComplexSubquery:
    """The complex part of a query, ready for graph-store execution."""

    patterns: Tuple[TriplePattern, ...]
    remainder: Tuple[TriplePattern, ...]
    output_variables: Tuple[str, ...]
    query: SelectQuery

    @property
    def predicates(self) -> FrozenSet[IRI]:
        """Concrete predicates of the complex subquery (``Pc`` in Algorithm 1)."""
        return frozenset(p.predicate for p in self.patterns if isinstance(p.predicate, IRI))

    @property
    def is_whole_query(self) -> bool:
        """True when every pattern of the original query is complex."""
        return not self.remainder

    def __len__(self) -> int:
        return len(self.patterns)


class ComplexSubqueryIdentifier:
    """Extracts the complex subquery, if any, from each incoming query.

    Parameters
    ----------
    minimum_patterns:
        A complex subquery must contain at least this many patterns.  The
        paper defines complex query patterns as containing *more than one
        predicate*, so the default is 2.
    """

    def __init__(self, minimum_patterns: int = 2):
        self.minimum_patterns = minimum_patterns

    def identify(self, query: SelectQuery) -> Optional[ComplexSubquery]:
        """Return the complex subquery of ``query`` or ``None``.

        A pattern belongs to the complex subquery when every *variable* it
        mentions occurs in more than one pattern of the query.  Constant
        subjects/objects do not disqualify a pattern.  Patterns without any
        variable never qualify (they are simple existence checks).
        """
        occurrences = query.variable_occurrences()

        complex_patterns = []
        remainder = []
        for pattern in query.patterns:
            names = pattern.variable_names()
            if names and all(occurrences.get(name, 0) > 1 for name in names):
                complex_patterns.append(pattern)
            else:
                remainder.append(pattern)

        if len(complex_patterns) < self.minimum_patterns:
            return None

        output_variables = self._output_variables(query, complex_patterns, remainder)
        subquery = SelectQuery(
            projection=tuple(Variable(name) for name in output_variables),
            patterns=tuple(complex_patterns),
            filters=tuple(
                f
                for f in query.filters
                if {v.name for v in f.variables()} <= _variable_names(complex_patterns)
            ),
            distinct=query.distinct,
        )
        return ComplexSubquery(
            patterns=tuple(complex_patterns),
            remainder=tuple(remainder),
            output_variables=output_variables,
            query=subquery,
        )

    def __call__(self, query: SelectQuery) -> Optional[ComplexSubquery]:
        return self.identify(query)

    @staticmethod
    def _output_variables(
        query: SelectQuery,
        complex_patterns: list[TriplePattern],
        remainder: list[TriplePattern],
    ) -> Tuple[str, ...]:
        """Variables the complex subquery must output.

        These are the variables shared with the remaining patterns (the join
        attributes of the split plan) plus any projected variable that only
        the complex part binds — without those the final answer could not be
        assembled.
        """
        complex_names = _variable_names(complex_patterns)
        remainder_names = _variable_names(remainder)
        shared = complex_names & remainder_names
        projected = set(query.projected_names())
        needed_projection = (projected & complex_names) - remainder_names
        output = shared | needed_projection
        if not output:
            # Fully complex query with a SELECT * style projection: keep the
            # projected names that exist, falling back to every variable.
            output = projected & complex_names or complex_names
        return tuple(sorted(output))


def _variable_names(patterns: list[TriplePattern]) -> set[str]:
    names: set[str] = set()
    for pattern in patterns:
        names.update(pattern.variable_names())
    return names


def identify_complex_subquery(query: SelectQuery) -> Optional[ComplexSubquery]:
    """Module-level convenience wrapper around the default identifier."""
    return ComplexSubqueryIdentifier().identify(query)
