"""Metrics and result records used by experiments and benchmarks.

The paper's primary metric is *time-to-insight* (TTI): the total elapsed time
from submitting a batch of workload queries to their completion.  The offline
training effect is measured by the summed Q-matrix of all partitions.
These records capture both, per query, per batch, and per workload run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cost.counters import WorkCounters
from repro.sparql.ast import SelectQuery

__all__ = ["QueryRecord", "BatchResult", "WorkloadResult", "improvement_percent"]


@dataclass
class QueryRecord:
    """The outcome of one online query execution."""

    query: SelectQuery
    seconds: float
    route: str
    result_count: int
    counters: WorkCounters = field(default_factory=WorkCounters)
    graph_seconds: float = 0.0
    relational_seconds: float = 0.0
    migration_seconds: float = 0.0
    had_complex_subquery: bool = False
    #: True when the record was served by the caching layer (result-cache hit
    #: or within-batch deduplication) instead of a fresh store execution.  The
    #: modelled ``seconds`` still price the underlying execution, so TTI-based
    #: experiments stay comparable whether or not a cache sits in front.
    from_cache: bool = False

    def replicate(self, from_cache: bool = True) -> "QueryRecord":
        """A per-submission copy of this record for cached/deduplicated serving.

        The serving layer must emit one record per *submitted* query even when
        several submissions share a single execution; sharing the mutable
        counters object across records would double-count work, so the copy
        gets its own counters.
        """
        return replace(self, counters=self.counters.copy(), from_cache=from_cache)


@dataclass
class BatchResult:
    """TTI and per-query details for one batch of the workload."""

    index: int
    records: List[QueryRecord] = field(default_factory=list)

    @property
    def tti(self) -> float:
        """Time-to-insight: total latency of the batch."""
        return sum(record.seconds for record in self.records)

    @property
    def graph_seconds(self) -> float:
        return sum(record.graph_seconds for record in self.records)

    @property
    def relational_seconds(self) -> float:
        return sum(record.relational_seconds for record in self.records)

    @property
    def graph_cost_share(self) -> float:
        """Fraction of the batch cost spent in the graph store (Figure 6)."""
        total = self.tti
        if total <= 0.0:
            return 0.0
        return self.graph_seconds / total

    def route_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.route] = counts.get(record.route, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class WorkloadResult:
    """The outcome of running a whole workload (several batches)."""

    label: str
    batches: List[BatchResult] = field(default_factory=list)
    qmatrix_sum: Tuple[float, float, float, float] = (0.0, 0.0, 0.0, 0.0)

    @property
    def total_tti(self) -> float:
        return sum(batch.tti for batch in self.batches)

    def batch_ttis(self) -> List[float]:
        return [batch.tti for batch in self.batches]

    def graph_cost_shares(self) -> List[float]:
        return [batch.graph_cost_share for batch in self.batches]

    def record_count(self) -> int:
        return sum(len(batch) for batch in self.batches)

    def summary(self) -> Dict[str, float]:
        return {
            "total_tti": self.total_tti,
            "batches": float(len(self.batches)),
            "queries": float(self.record_count()),
        }


def improvement_percent(baseline: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``baseline``.

    Positive values mean ``improved`` is faster.  This is the quantity behind
    the paper's headline "up to average 43.72%" figure.
    """
    if baseline <= 0.0:
        return 0.0
    return (baseline - improved) / baseline * 100.0
