"""Triple partitions and the dual-store physical design (Section 4.1).

A *triple partition* is the set of all triples sharing one predicate; it is
the unit of data the tuner moves between stores.  The *dual-store design*
``D = <T_R, T_G>`` records which partitions live where: ``T_R`` always holds
every partition (the relational store keeps the master copy), ``T_G`` is the
subset currently replicated into the graph store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping

from repro.errors import UnknownPartitionError
from repro.rdf.terms import IRI

__all__ = ["TriplePartition", "DualStoreDesign"]


@dataclass(frozen=True)
class TriplePartition:
    """Metadata about one predicate's partition."""

    predicate: IRI
    size: int

    @property
    def name(self) -> str:
        return self.predicate.local_name()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}({self.size})"


@dataclass
class DualStoreDesign:
    """The current physical design ``D = <T_R, T_G>``.

    Attributes
    ----------
    partition_sizes:
        Size (triple count) of every partition in the knowledge graph; this
        doubles as the definition of ``T_R``.
    in_graph_store:
        The predicates whose partitions are currently replicated in the graph
        store (``T_G``).
    storage_budget:
        The graph store's capacity ``B_G`` in triples.
    """

    partition_sizes: Dict[IRI, int]
    in_graph_store: set[IRI] = field(default_factory=set)
    storage_budget: int = 0

    def __post_init__(self) -> None:
        unknown = self.in_graph_store - set(self.partition_sizes)
        if unknown:
            names = ", ".join(sorted(p.value for p in unknown))
            raise UnknownPartitionError(f"partitions not in the knowledge graph: {names}")

    # ------------------------------------------------------------------ #
    # T_R / T_G views
    # ------------------------------------------------------------------ #
    @property
    def relational_partitions(self) -> FrozenSet[IRI]:
        """``T_R`` — every partition (the relational store keeps them all)."""
        return frozenset(self.partition_sizes)

    @property
    def graph_partitions(self) -> FrozenSet[IRI]:
        """``T_G`` — partitions replicated into the graph store."""
        return frozenset(self.in_graph_store)

    def partitions(self) -> Iterator[TriplePartition]:
        for predicate, size in sorted(self.partition_sizes.items(), key=lambda kv: kv[0].value):
            yield TriplePartition(predicate, size)

    def size_of(self, predicate: IRI) -> int:
        try:
            return self.partition_sizes[predicate]
        except KeyError:
            raise UnknownPartitionError(f"unknown partition {predicate.value!r}") from None

    # ------------------------------------------------------------------ #
    # Budget accounting
    # ------------------------------------------------------------------ #
    def used_budget(self) -> int:
        return sum(self.partition_sizes[p] for p in self.in_graph_store)

    def remaining_budget(self) -> int:
        return self.storage_budget - self.used_budget()

    def fits(self, predicates: Iterable[IRI]) -> bool:
        """Would adding these partitions stay within ``B_G``?"""
        additional = sum(self.size_of(p) for p in set(predicates) - self.in_graph_store)
        return additional <= self.remaining_budget()

    # ------------------------------------------------------------------ #
    # Design transitions (pure bookkeeping; actual data movement is the
    # DualStore's job)
    # ------------------------------------------------------------------ #
    def mark_transferred(self, predicate: IRI) -> None:
        self.size_of(predicate)  # validates existence
        self.in_graph_store.add(predicate)

    def mark_evicted(self, predicate: IRI) -> None:
        if predicate not in self.in_graph_store:
            raise UnknownPartitionError(f"partition {predicate.value!r} is not in the graph store")
        self.in_graph_store.remove(predicate)

    def covers(self, predicates: Iterable[IRI]) -> bool:
        return set(predicates) <= self.in_graph_store

    def copy(self) -> "DualStoreDesign":
        return DualStoreDesign(
            partition_sizes=dict(self.partition_sizes),
            in_graph_store=set(self.in_graph_store),
            storage_budget=self.storage_budget,
        )

    @classmethod
    def from_sizes(
        cls,
        sizes: Mapping[IRI, int],
        storage_budget: int,
        in_graph_store: Iterable[IRI] = (),
    ) -> "DualStoreDesign":
        return cls(
            partition_sizes=dict(sizes),
            in_graph_store=set(in_graph_store),
            storage_budget=storage_budget,
        )
