"""The three store variants compared in Section 6.2.

* **RDB-only** — the entire knowledge graph lives in a relational store and
  every query runs there.  This is the paper's "most commonly used" baseline.
* **RDB-views** — RDB-only plus materialized views: during each offline phase
  the most frequent complex subqueries of the historical workload are
  materialized, subject to the same storage budget the graph store would get.
* **RDB-GDB** — the dual-store structure: relational master copy, graph-store
  accelerator, and a tuner (DOTIL by default) that adjusts the physical
  design after every batch.

All three expose the same interface (``load`` / ``run_batch`` /
``offline_phase``) so the workload runner and the experiments can treat them
uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.execution import ResultTable
from repro.rdf.graph import TripleSet
from repro.sparql.ast import SelectQuery, TriplePattern
from repro.relstore.store import RelationalStore
from repro.relstore.views import canonical_pattern_key

from repro.core.config import DEFAULT_CONFIG, DotilConfig
from repro.core.dualstore import DualStore
from repro.core.identifier import ComplexSubquery, ComplexSubqueryIdentifier
from repro.core.metrics import BatchResult, QueryRecord
from repro.core.tuner import BaseTuner, Dotil, TuningReport

__all__ = ["StoreVariant", "RDBOnly", "RDBViews", "RDBGDB", "TunerFactory"]

TunerFactory = Callable[[DualStore], BaseTuner]


class StoreVariant:
    """Common interface of the three storage designs under comparison."""

    name = "variant"

    def load(self, knowledge_graph: TripleSet) -> "StoreVariant":
        raise NotImplementedError

    def run_batch(self, queries: Sequence[SelectQuery], batch_index: int = 0) -> BatchResult:
        """Process one batch online and return its TTI breakdown."""
        raise NotImplementedError

    def offline_phase(
        self,
        queries: Sequence[SelectQuery],
        upcoming: Sequence[SelectQuery] | None = None,
    ) -> Optional[TuningReport]:
        """Run the periodic offline reconfiguration after a batch (if any)."""
        return None

    def prepare(self, all_queries: Sequence[SelectQuery]) -> None:
        """Hook used by policies that need the whole workload up front."""
        return None


class RDBOnly(StoreVariant):
    """Everything in the relational store; no offline reconfiguration."""

    name = "RDB-only"

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.store = RelationalStore(cost_model=cost_model)
        self.identifier = ComplexSubqueryIdentifier()

    def load(self, knowledge_graph: TripleSet) -> "RDBOnly":
        self.store.load(knowledge_graph)
        return self

    def run_batch(self, queries: Sequence[SelectQuery], batch_index: int = 0) -> BatchResult:
        batch = BatchResult(index=batch_index)
        for query in queries:
            complex_subquery = self.identifier.identify(query)
            result = self.store.execute(query)
            batch.records.append(
                QueryRecord(
                    query=query,
                    seconds=result.seconds,
                    route="relational",
                    result_count=len(result),
                    counters=result.counters,
                    relational_seconds=result.seconds,
                    had_complex_subquery=complex_subquery is not None,
                )
            )
        return batch


class RDBViews(StoreVariant):
    """Relational store accelerated by frequency-selected materialized views."""

    name = "RDB-views"

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        view_budget_fraction: float = DEFAULT_CONFIG.r_bg,
    ):
        self.cost_model = cost_model
        self.view_budget_fraction = view_budget_fraction
        self.store: Optional[RelationalStore] = None
        self.identifier = ComplexSubqueryIdentifier()

    def load(self, knowledge_graph: TripleSet) -> "RDBViews":
        budget_rows = int(self.view_budget_fraction * len(knowledge_graph))
        self.store = RelationalStore(cost_model=self.cost_model, view_row_budget=budget_rows)
        self.store.load(knowledge_graph)
        return self

    # ------------------------------------------------------------------ #
    # Online
    # ------------------------------------------------------------------ #
    def run_batch(self, queries: Sequence[SelectQuery], batch_index: int = 0) -> BatchResult:
        assert self.store is not None and self.store.view_manager is not None
        batch = BatchResult(index=batch_index)
        for query in queries:
            complex_subquery = self.identifier.identify(query)
            view = None
            if complex_subquery is not None:
                view = self.store.view_manager.match(complex_subquery.patterns)
                if view is not None and not self._view_compatible(view.table, complex_subquery.patterns):
                    view = None
            if view is not None:
                result = self.store.execute_with_view(query, view)
                route = "view"
            else:
                result = self.store.execute(query)
                route = "relational"
            batch.records.append(
                QueryRecord(
                    query=query,
                    seconds=result.seconds,
                    route=route,
                    result_count=len(result),
                    counters=result.counters,
                    relational_seconds=result.seconds,
                    had_complex_subquery=complex_subquery is not None,
                )
            )
        return batch

    @staticmethod
    def _view_compatible(table: ResultTable, patterns: Tuple[TriplePattern, ...]) -> bool:
        """The stored view must bind variables by the names this query uses."""
        names: set[str] = set()
        for pattern in patterns:
            names.update(pattern.variable_names())
        return set(table.variables) <= names

    # ------------------------------------------------------------------ #
    # Offline: observe frequencies and rebuild the view set
    # ------------------------------------------------------------------ #
    def offline_phase(
        self,
        queries: Sequence[SelectQuery],
        upcoming: Sequence[SelectQuery] | None = None,
    ) -> Optional[TuningReport]:
        assert self.store is not None and self.store.view_manager is not None
        manager = self.store.view_manager

        observed: Dict[Tuple, Tuple[Tuple[TriplePattern, ...], SelectQuery]] = {}
        for query in queries:
            complex_subquery = self.identifier.identify(query)
            if complex_subquery is None:
                continue
            manager.observe(complex_subquery.patterns)
            key = canonical_pattern_key(complex_subquery.patterns)
            observed.setdefault(key, (complex_subquery.patterns, complex_subquery.query))

        # Materialize candidates for every frequent key we have a definition for
        # (offline work: not charged to TTI, like the paper's offline phase).
        candidates: Dict[Tuple, Tuple[Tuple[TriplePattern, ...], ResultTable]] = {}
        for key in manager.frequent_keys():
            if key not in observed:
                continue
            patterns, subquery = observed[key]
            result = self.store.execute(subquery)
            candidates[key] = (patterns, ResultTable.from_result(f"view_{len(candidates)}", result))
        manager.select_views(candidates)
        return None


class RDBGDB(StoreVariant):
    """The dual-store structure with a pluggable tuning policy."""

    name = "RDB-GDB"

    def __init__(
        self,
        config: DotilConfig = DEFAULT_CONFIG,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        tuner_factory: TunerFactory | None = None,
        throttle: Optional[ResourceThrottle] = None,
    ):
        self.config = config
        self.dual = DualStore(config=config, cost_model=cost_model, throttle=throttle)
        factory = tuner_factory if tuner_factory is not None else (lambda dual: Dotil(dual, config))
        self.tuner: BaseTuner = factory(self.dual)
        self.identifier = self.dual.identifier
        self.last_report: Optional[TuningReport] = None

    def load(self, knowledge_graph: TripleSet) -> "RDBGDB":
        self.dual.load(knowledge_graph)
        return self

    def run_batch(self, queries: Sequence[SelectQuery], batch_index: int = 0) -> BatchResult:
        batch = BatchResult(index=batch_index)
        for query in queries:
            processed = self.dual.run_query(query)
            batch.records.append(processed.record)
        return batch

    def offline_phase(
        self,
        queries: Sequence[SelectQuery],
        upcoming: Sequence[SelectQuery] | None = None,
    ) -> Optional[TuningReport]:
        recent = self._complex_subqueries(queries)
        future = self._complex_subqueries(upcoming) if upcoming else None
        self.last_report = self.tuner.tune(recent, upcoming=future)
        return self.last_report

    def prepare(self, all_queries: Sequence[SelectQuery]) -> None:
        self.tuner.prepare(self._complex_subqueries(all_queries))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _complex_subqueries(self, queries: Sequence[SelectQuery] | None) -> List[ComplexSubquery]:
        if not queries:
            return []
        found = []
        for query in queries:
            complex_subquery = self.identifier.identify(query)
            if complex_subquery is not None:
                found.append(complex_subquery)
        return found

    # Introspection used in experiments and examples ------------------- #
    def qmatrix_sum(self) -> Tuple[float, float, float, float]:
        if isinstance(self.tuner, Dotil):
            return self.tuner.qtable.summed()
        return (0.0, 0.0, 0.0, 0.0)

    def graph_coverage(self) -> float:
        return self.dual.graph_coverage()
