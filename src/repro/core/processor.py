"""Query processor of the dual-store structure (Section 5, Algorithm 3).

Given a query ``q`` and its complex subquery ``q_c`` (identified by the
complex subquery identifier), the processor routes execution according to
which predicates currently live in the graph store:

* **Case 1** — the graph store covers every predicate of ``q``: run the whole
  query in the graph store.
* **Case 2** — the graph store covers the predicates of ``q_c`` but not all of
  ``q``: run ``q_c`` in the graph store, migrate its intermediate results
  into the relational store's temporary table space, and finish the remaining
  part of ``q`` there.
* **Case 3** — the graph store does not cover ``q_c`` (or there is no complex
  subquery): run ``q`` in the relational store.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from itertools import count
from typing import Optional

from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.execution import ExecutionResult, ResultTable
from repro.graphstore.store import GraphStore
from repro.relstore.backend import RelationalBackend
from repro.sparql.ast import SelectQuery

from repro.core.identifier import ComplexSubquery
from repro.core.metrics import QueryRecord

__all__ = ["QueryProcessor", "ProcessedQuery", "ROUTE_GRAPH", "ROUTE_RELATIONAL", "ROUTE_SPLIT"]

ROUTE_GRAPH = "graph"
ROUTE_RELATIONAL = "relational"
ROUTE_SPLIT = "split"


@dataclass
class ProcessedQuery:
    """The routed execution of one query."""

    result: ExecutionResult
    record: QueryRecord

    @property
    def route(self) -> str:
        return self.record.route

    @property
    def seconds(self) -> float:
        return self.record.seconds


class QueryProcessor:
    """Routes queries across the two stores based on the current design.

    Concurrency contract: ``process`` only *reads* store state, so several
    threads may process queries at once (the serving layer's batched admission
    path relies on this) provided no physical-design mutation — ``insert``,
    ``transfer_partition``, ``evict_partition`` — runs concurrently.  The only
    processor-owned mutable state is the temporary-table name counter, which
    is guarded by a lock.

    The relational side is any :class:`~repro.relstore.backend.RelationalBackend`;
    with a sharded backend, Case 2/3 executions scatter-gather across shards
    transparently (the migrated intermediate table joins centrally at the
    coordinator, so split plans need no shard awareness here).
    """

    def __init__(
        self,
        relational: RelationalBackend,
        graph: GraphStore,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ):
        self.relational = relational
        self.graph = graph
        self.cost_model = cost_model
        self._temp_table_ids = count(1)
        self._temp_table_lock = threading.Lock()

    def _next_temp_table_name(self) -> str:
        with self._temp_table_lock:
            return f"temp_complex_{next(self._temp_table_ids)}"

    def process(self, query: SelectQuery, complex_subquery: Optional[ComplexSubquery]) -> ProcessedQuery:
        """Execute ``query`` using Algorithm 3's three cases."""
        if complex_subquery is None:
            return self._run_relational(query, had_complex=False)

        query_predicates = query.predicates()
        subquery_predicates = complex_subquery.predicates

        # The graph store can only evaluate patterns with concrete predicates;
        # queries using predicate variables always take the relational path.
        whole_query_graph_safe = all(p.has_concrete_predicate for p in query.patterns)
        subquery_graph_safe = all(p.has_concrete_predicate for p in complex_subquery.patterns)

        if whole_query_graph_safe and self.graph.covers(query_predicates):
            return self._run_graph(query, complex_subquery)
        if subquery_graph_safe and complex_subquery.remainder and self.graph.covers(subquery_predicates):
            return self._run_split(query, complex_subquery)
        return self._run_relational(query, had_complex=True)

    # ------------------------------------------------------------------ #
    # Case 3 (and the no-complex-subquery case)
    # ------------------------------------------------------------------ #
    def _run_relational(self, query: SelectQuery, had_complex: bool) -> ProcessedQuery:
        result = self.relational.execute(query)
        record = QueryRecord(
            query=query,
            seconds=result.seconds,
            route=ROUTE_RELATIONAL,
            result_count=len(result),
            counters=result.counters,
            relational_seconds=result.seconds,
            had_complex_subquery=had_complex,
        )
        return ProcessedQuery(result=result, record=record)

    # ------------------------------------------------------------------ #
    # Case 1
    # ------------------------------------------------------------------ #
    def _run_graph(self, query: SelectQuery, complex_subquery: ComplexSubquery) -> ProcessedQuery:
        result = self.graph.execute(query)
        record = QueryRecord(
            query=query,
            seconds=result.seconds,
            route=ROUTE_GRAPH,
            result_count=len(result),
            counters=result.counters,
            graph_seconds=result.seconds,
            had_complex_subquery=True,
        )
        return ProcessedQuery(result=result, record=record)

    # ------------------------------------------------------------------ #
    # Case 2
    # ------------------------------------------------------------------ #
    def _run_split(self, query: SelectQuery, complex_subquery: ComplexSubquery) -> ProcessedQuery:
        graph_result = self.graph.execute(complex_subquery.query)

        table = ResultTable.from_result(
            name=self._next_temp_table_name(),
            result=graph_result,
        )
        migration_seconds = self.cost_model.migration_seconds(len(table))

        remainder_query = query.with_patterns(complex_subquery.remainder, projection=query.projection)
        relational_result = self.relational.execute(remainder_query, extra_tables=[table])

        total_seconds = graph_result.seconds + migration_seconds + relational_result.seconds
        combined_counters = graph_result.counters.merge(relational_result.counters)
        combined_counters.triples_migrated += len(table)

        final = ExecutionResult(
            bindings=relational_result.bindings,
            variables=relational_result.variables,
            counters=combined_counters,
            seconds=total_seconds,
            store="dual",
            scatter=relational_result.scatter,  # the relational leg's per-shard view
        )
        record = QueryRecord(
            query=query,
            seconds=total_seconds,
            route=ROUTE_SPLIT,
            result_count=len(final),
            counters=combined_counters,
            graph_seconds=graph_result.seconds,
            relational_seconds=relational_result.seconds,
            migration_seconds=migration_seconds,
            had_complex_subquery=True,
        )
        return ProcessedQuery(result=final, record=record)
