"""The dual-store structure: relational master copy + graph-store accelerator.

:class:`DualStore` wires together everything in Figure 1 of the paper:

* the relational store holding the entire knowledge graph,
* the budget-constrained graph store holding transferred partitions,
* the complex subquery identifier,
* the query processor, and
* the bookkeeping (:class:`~repro.core.partitions.DualStoreDesign`) that the
  tuner manipulates.

The tuner itself is a separate object (DOTIL or one of the baselines) that
operates *on* a DualStore; this keeps the storage structure reusable across
tuning policies, which is exactly what the tuner-comparison experiment needs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.errors import StorageBudgetExceeded, TuningError
from repro.execution import ExecutionResult
from repro.rdf.dictionary import term_to_payload
from repro.rdf.graph import TripleSet
from repro.rdf.terms import IRI, Triple
from repro.relstore.backend import RelationalBackend
from repro.relstore.executor import relational_work_units
from repro.relstore.sharded import ShardedRelationalStore, ShardingConfig
from repro.relstore.store import RelationalStore
from repro.graphstore.store import GraphStore
from repro.sparql.ast import SelectQuery

from repro.core.config import DEFAULT_CONFIG, DotilConfig
from repro.core.identifier import ComplexSubquery, ComplexSubqueryIdentifier
from repro.core.metrics import QueryRecord
from repro.core.partitions import DualStoreDesign
from repro.core.processor import ProcessedQuery, QueryProcessor

__all__ = ["DualStore", "MoveReceipt"]


def _triple_payload(triple: Triple) -> list:
    """The JSON op encoding of one triple, shared with the delta log's
    reader (:func:`repro.persist.wal.triple_from_payload`)."""
    return [
        term_to_payload(triple.subject),
        term_to_payload(triple.predicate),
        term_to_payload(triple.object),
    ]


@dataclass
class MoveReceipt:
    """What one batched physical-design change (:meth:`DualStore.apply_moves`)
    actually did, with symmetric modelled cost accounting for both directions."""

    transferred: List[IRI] = field(default_factory=list)
    evicted: List[IRI] = field(default_factory=list)
    import_seconds: float = 0.0
    evict_seconds: float = 0.0

    @property
    def moves(self) -> int:
        """Total physical moves applied (transfers plus evictions)."""
        return len(self.transferred) + len(self.evicted)

    @property
    def seconds(self) -> float:
        """Total modelled cost of the batch (imports plus evictions)."""
        return self.import_seconds + self.evict_seconds


class DualStore:
    """The dual-store structure for knowledge graphs.

    Parameters
    ----------
    config:
        The structure/tuner configuration (the graph-store budget is derived
        from ``config.r_bg`` at load time).
    cost_model:
        Latency model shared by both stores and the query processor.
    throttle:
        Optional resource throttle applied to the graph store (Section 6.3.3
        experiments).
    storage_budget:
        Explicit budget in triples; overrides ``config.r_bg`` when given.
    shards:
        When given, the relational master copy is a
        :class:`~repro.relstore.sharded.ShardedRelationalStore` with that
        many shards (scatter-gather execution, identical logical work;
        ``shards=1`` builds a degenerate one-shard store that prices like
        the unsharded one but still reports a scatter breakdown).
    sharding:
        Placement tunables for the sharded store; giving only this builds a
        sharded store with :class:`ShardedRelationalStore`'s own default
        shard count.
    relational_store:
        An already-built :class:`~repro.relstore.backend.RelationalBackend`
        to use instead of constructing one (overrides ``shards``/``sharding``;
        the caller is responsible for matching cost models).
    engine:
        Relational execution engine for the constructed store (``"idspace"``
        default, or ``"columnar"``; the unsharded store also accepts
        ``"reference"``).  With an explicit ``relational_store`` the engines
        must agree — a mismatch raises instead of silently running a
        different engine than the one configured.
    """

    def __init__(
        self,
        config: DotilConfig = DEFAULT_CONFIG,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        throttle: Optional[ResourceThrottle] = None,
        storage_budget: Optional[int] = None,
        shards: Optional[int] = None,
        sharding: Optional[ShardingConfig] = None,
        relational_store: Optional[RelationalBackend] = None,
        engine: Optional[str] = None,
    ):
        self.config = config
        self.cost_model = cost_model
        if relational_store is not None:
            store_engine = getattr(relational_store, "engine", None)
            if engine is not None and engine != store_engine:
                raise ValueError(
                    f"engine {engine!r} conflicts with the provided relational "
                    f"store's engine {store_engine!r}"
                )
            self.relational: RelationalBackend = relational_store
        elif shards is not None:
            self.relational = ShardedRelationalStore(
                shards=shards, cost_model=cost_model, config=sharding,
                engine=engine or "idspace",
            )
        elif sharding is not None:
            self.relational = ShardedRelationalStore(
                cost_model=cost_model, config=sharding, engine=engine or "idspace"
            )
        else:
            self.relational = RelationalStore(cost_model=cost_model, engine=engine or "idspace")
        self.graph = GraphStore(storage_budget=storage_budget, cost_model=cost_model, throttle=throttle)
        self.identifier = ComplexSubqueryIdentifier()
        self.processor = QueryProcessor(self.relational, self.graph, cost_model=cost_model)
        self.design: Optional[DualStoreDesign] = None
        self._explicit_budget = storage_budget
        self.transfer_log: List[Tuple[str, IRI]] = []
        #: Monotonic counter bumped on every mutation that can change query
        #: answers or routing (load/insert/transfer/evict).  Serving-layer
        #: caches tag entries with the generation they were computed under and
        #: treat any entry from an older generation as stale, so a cache can
        #: never return a result that predates a mutation.
        self.generation: int = 0
        self._invalidation_hooks: List[Callable[[int], None]] = []
        #: Mutation listeners receive the *content* of each generation bump —
        #: the ordered op payloads that produced it — before the invalidation
        #: hooks fire.  This is the seam the write-ahead delta log
        #: (:mod:`repro.persist.wal`) attaches to; op payloads are only
        #: collected while at least one listener is registered, so the
        #: listener-free path stays allocation-free and streaming.
        self._mutation_listeners: List[Callable[[List[dict], int], None]] = []
        self._pending_ops: List[dict] = []
        # Batched-mutation state (see batch_mutations): while the depth is
        # positive, generation bumps are coalesced into one fired at exit.
        self._batch_depth: int = 0
        self._batched_bump_pending: bool = False

    # ------------------------------------------------------------------ #
    # Mutation generations (consumed by repro.serve caches)
    # ------------------------------------------------------------------ #
    def add_invalidation_hook(self, hook: Callable[[int], None]) -> None:
        """Register a callback invoked with the new generation after every
        answer-changing mutation (``load``, ``insert``, ``transfer_partition``,
        ``evict_partition``)."""
        self._invalidation_hooks.append(hook)

    def remove_invalidation_hook(self, hook: Callable[[int], None]) -> None:
        self._invalidation_hooks.remove(hook)

    def add_mutation_listener(self, listener: Callable[[List[dict], int], None]) -> None:
        """Register a callback invoked with ``(ops, generation)`` after every
        generation bump, *before* the invalidation hooks.  ``ops`` is the
        ordered list of JSON-serializable op payloads the bump coalesced
        (one per mutation inside a :meth:`batch_mutations` block, one total
        otherwise); an empty list means the bump came from a mutation the op
        vocabulary cannot represent (e.g. a re-``load``).  Listeners must not
        raise — an exception would propagate out of the mutation that
        committed successfully."""
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener: Callable[[List[dict], int], None]) -> None:
        self._mutation_listeners.remove(listener)

    def _record_op(self, op: dict) -> None:
        if self._mutation_listeners:
            self._pending_ops.append(op)

    def _bump_generation(self) -> None:
        if self._batch_depth > 0:
            self._batched_bump_pending = True
            return
        self.generation += 1
        if self._mutation_listeners:
            ops, self._pending_ops = self._pending_ops, []
            for listener in self._mutation_listeners:
                listener(ops, self.generation)
        elif self._pending_ops:
            # The last listener detached mid-collection; drop the orphans so
            # they cannot leak into a later listener's first event.
            self._pending_ops = []
        for hook in self._invalidation_hooks:
            hook(self.generation)

    @contextmanager
    def batch_mutations(self) -> Iterator["DualStore"]:
        """Coalesce the generation bumps of several mutations into one.

        Inside the context, mutations (``insert``/``transfer_partition``/
        ``evict_partition``) take full physical effect immediately but do not
        bump :attr:`generation`; on exit, if any mutation happened, the
        generation advances **once** and the invalidation hooks fire **once**.
        This is what lets a tuning epoch of k moves cost the serving layer one
        result-cache invalidation instead of k.

        The usual mutation contract still applies — and is load-bearing here:
        no query may execute concurrently with the context, because until the
        exit bump a concurrent execution would be tagged with the pre-batch
        generation while observing mid-batch store state.  The serving layer's
        :class:`~repro.serve.adaptive.TuningDaemon` guarantees exclusivity via
        its read/write gate.  Nesting is allowed; only the outermost exit fires.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._batched_bump_pending:
                self._batched_bump_pending = False
                self._bump_generation()

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load(self, knowledge_graph: TripleSet | Iterable[Triple]) -> "DualStore":
        """Load the entire knowledge graph into the relational store.

        The graph store starts empty (the paper's cold start); its budget is
        ``r_bg`` times the knowledge-graph size unless an explicit budget was
        supplied.
        """
        triples = knowledge_graph if isinstance(knowledge_graph, TripleSet) else TripleSet(knowledge_graph)
        self.relational.load(triples)
        sizes = self.relational.partition_sizes()
        budget = self._explicit_budget
        if budget is None:
            budget = int(self.config.r_bg * len(triples))
        self.graph.storage_budget = budget
        self.design = DualStoreDesign.from_sizes(sizes, storage_budget=budget)
        self._bump_generation()
        return self

    def insert(self, triples: Iterable[Triple]) -> float:
        """Insert new knowledge (goes to the relational master copy only)."""
        if self._mutation_listeners and not isinstance(triples, (list, tuple)):
            triples = list(triples)  # the op payload needs a second pass
        seconds = self.relational.insert(triples)
        if self.design is not None:
            self.design.partition_sizes = self.relational.partition_sizes()
        if self._mutation_listeners:
            self._record_op({"op": "insert", "t": [_triple_payload(t) for t in triples]})
        self._bump_generation()
        return seconds

    def delete(self, triples: Iterable[Triple]) -> int:
        """Remove triples from the relational master copy; returns how many
        were actually present and removed.

        Symmetric with :meth:`insert`: the graph store's replicas are not
        touched — a resident partition legitimately lags the master copy
        until the tuner re-transfers it.  Deleting an absent triple is a
        no-op for that triple, but the call still bumps the generation
        (callers asked for a mutation; caches must not trust their entries).
        """
        self._require_loaded()
        if not isinstance(triples, (list, tuple)):
            triples = list(triples)
        removed = 0
        for triple in triples:
            if self.relational.delete(triple):
                removed += 1
        if self.design is not None:
            self.design.partition_sizes = self.relational.partition_sizes()
        if self._mutation_listeners:
            self._record_op({"op": "delete", "t": [_triple_payload(t) for t in triples]})
        self._bump_generation()
        return removed

    # ------------------------------------------------------------------ #
    # Online query processing
    # ------------------------------------------------------------------ #
    def run_query(self, query: SelectQuery) -> ProcessedQuery:
        """Process one query online and return its routed execution."""
        self._require_loaded()
        complex_subquery = self.identifier.identify(query)
        return self.processor.process(query, complex_subquery)

    def identify(self, query: SelectQuery) -> Optional[ComplexSubquery]:
        return self.identifier.identify(query)

    # ------------------------------------------------------------------ #
    # Physical design changes (called by tuners)
    # ------------------------------------------------------------------ #
    def transfer_partition(self, predicate: IRI) -> float:
        """Replicate one partition into the graph store; returns import seconds."""
        self._require_loaded()
        assert self.design is not None
        triples = self.relational.partition(predicate)
        seconds = self.graph.load_partition(predicate, triples)
        self.design.mark_transferred(predicate)
        self.transfer_log.append(("transfer", predicate))
        self._record_op({"op": "transfer", "p": predicate.value})
        self._bump_generation()
        return seconds

    def evict_partition(self, predicate: IRI) -> float:
        """Remove one partition from the graph store; returns eviction seconds.

        Like :meth:`transfer_partition`, the return value is the *modelled*
        cost of the physical move (the tuning daemon accounts both directions
        symmetrically).  The number of triples removed is available via the
        partition sizes before eviction.
        """
        self._require_loaded()
        assert self.design is not None
        removed = self.graph.evict_partition(predicate)
        self.design.mark_evicted(predicate)
        self.transfer_log.append(("evict", predicate))
        self._record_op({"op": "evict", "p": predicate.value})
        self._bump_generation()
        return self.cost_model.graph_evict_seconds(removed)

    def transfer_partitions(self, predicates: Iterable[IRI]) -> float:
        """Transfer several partitions; returns the total import seconds.

        A known batch of moves, so it batches: one generation bump and one
        invalidation for the lot (see :meth:`apply_moves`)."""
        return self.apply_moves(transfers=predicates).import_seconds

    def apply_moves(
        self,
        transfers: Iterable[IRI] = (),
        evictions: Iterable[IRI] = (),
    ) -> MoveReceipt:
        """Apply a batch of physical-design moves under one generation bump.

        Evictions run first (they free budget for the incoming transfers),
        then transfers, all inside :meth:`batch_mutations` — so however many
        moves the batch contains, the serving layer sees exactly one
        invalidation.  Returns a :class:`MoveReceipt` with the modelled cost
        of each direction.
        """
        self._require_loaded()
        receipt = MoveReceipt()
        with self.batch_mutations():
            for predicate in evictions:
                receipt.evict_seconds += self.evict_partition(predicate)
                receipt.evicted.append(predicate)
            for predicate in transfers:
                receipt.import_seconds += self.transfer_partition(predicate)
                receipt.transferred.append(predicate)
        return receipt

    # ------------------------------------------------------------------ #
    # Costs used by the tuner's reward computation
    # ------------------------------------------------------------------ #
    def graph_cost(self, subquery: SelectQuery) -> Tuple[float, ExecutionResult]:
        """Cost ``c1`` of running a complex subquery in the graph store."""
        result = self.graph.execute(subquery)
        return result.seconds, result

    def counterfactual_relational_cost(self, subquery: SelectQuery, cap_seconds: float) -> float:
        """Cost ``c2``: the relational run capped at ``cap_seconds``.

        Mirrors the paper's parallel thread stopped at ``λ·c₁``: execution is
        given a work budget equivalent to the cap; if it finishes within the
        budget the true cost is returned, otherwise the cap itself.
        """
        per_row = max(self.cost_model.relational_row_scan, 1e-12)
        work_budget = max(1.0, (cap_seconds - self.cost_model.relational_query_overhead) / per_row)
        result, seconds = self.relational.execute_capped(subquery, work_budget=work_budget)
        if result is None:
            return cap_seconds
        return min(seconds, cap_seconds)

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def snapshot(self, path, keep: int = 2):
        """Write an atomic, versioned snapshot of the whole dual store.

        Persists the term dictionary, the relational triple tables (per-shard
        when sharded, preserving placement), the graph store's residency and
        budget accounting, the physical design, and table statistics, under a
        manifest carrying the format version, a dataset fingerprint, and the
        store generation.  Pure read — the generation does not change.  The
        caller must hold the usual mutation exclusivity (the serving layer
        checkpoints under its writer gate), making the snapshot a consistent
        cut.  Returns the committed
        :class:`~repro.persist.SnapshotManifest`.
        """
        from repro.persist.snapshot import write_snapshot  # lazy: avoids an import cycle

        return write_snapshot(self, path, keep=keep)

    @classmethod
    def restore(
        cls,
        path,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        throttle: Optional[ResourceThrottle] = None,
    ) -> "DualStore":
        """Rebuild a dual store from the committed snapshot under ``path``.

        The restored store is execution-equivalent to the snapshotted one:
        byte-identical bindings, bit-identical work counters, identical
        generation, placement, and statistics.  The tuner configuration is
        read from the snapshot; the cost model and throttle are runtime
        concerns supplied by the caller.
        """
        from repro.persist.snapshot import load_snapshot  # lazy: avoids an import cycle

        return load_snapshot(path, cost_model=cost_model, throttle=throttle).dual

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def partition_sizes(self) -> Dict[IRI, int]:
        return self.relational.partition_sizes()

    def graph_coverage(self) -> float:
        """Fraction of the knowledge graph currently replicated in the graph store."""
        total = len(self.relational)
        if total == 0:
            return 0.0
        return self.graph.used_capacity() / total

    def _require_loaded(self) -> None:
        if self.design is None:
            raise TuningError("the dual store has no data; call load() first")

    # Convenience aliases used throughout the experiments -------------- #
    @property
    def storage_budget(self) -> int:
        return self.graph.storage_budget or 0

    def relational_work_for(self, query: SelectQuery) -> float:
        """Relational work units ``query`` costs, measured by executing it."""
        return relational_work_units(self.relational.execute(query).counters)
