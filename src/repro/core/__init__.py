"""Core of the reproduction: identifier, tuners, query processor, dual store, variants."""

from repro.core.baseline_tuners import IdealTuner, LRUTuner, OneOffTuner, StaticTuner
from repro.core.config import DEFAULT_CONFIG, PAPER_TUNED_CONFIG, DotilConfig
from repro.core.dualstore import DualStore, MoveReceipt
from repro.core.identifier import (
    ComplexSubquery,
    ComplexSubqueryIdentifier,
    identify_complex_subquery,
)
from repro.core.metrics import BatchResult, QueryRecord, WorkloadResult, improvement_percent
from repro.core.partitions import DualStoreDesign, TriplePartition
from repro.core.processor import (
    ProcessedQuery,
    QueryProcessor,
    ROUTE_GRAPH,
    ROUTE_RELATIONAL,
    ROUTE_SPLIT,
)
from repro.core.qlearning import (
    ACTION_KEEP,
    ACTION_MOVE,
    QMatrix,
    QTable,
    STATE_GRAPH,
    STATE_RELATIONAL,
)
from repro.core.runner import average_workload_results, run_workload, run_workload_repeated
from repro.core.tuner import BaseTuner, Dotil, TuningReport
from repro.core.variants import RDBGDB, RDBOnly, RDBViews, StoreVariant

__all__ = [
    "DotilConfig",
    "DEFAULT_CONFIG",
    "PAPER_TUNED_CONFIG",
    "ComplexSubquery",
    "ComplexSubqueryIdentifier",
    "identify_complex_subquery",
    "TriplePartition",
    "DualStoreDesign",
    "QMatrix",
    "QTable",
    "STATE_RELATIONAL",
    "STATE_GRAPH",
    "ACTION_KEEP",
    "ACTION_MOVE",
    "DualStore",
    "MoveReceipt",
    "QueryProcessor",
    "ProcessedQuery",
    "ROUTE_GRAPH",
    "ROUTE_RELATIONAL",
    "ROUTE_SPLIT",
    "BaseTuner",
    "Dotil",
    "TuningReport",
    "OneOffTuner",
    "LRUTuner",
    "IdealTuner",
    "StaticTuner",
    "StoreVariant",
    "RDBOnly",
    "RDBViews",
    "RDBGDB",
    "QueryRecord",
    "BatchResult",
    "WorkloadResult",
    "improvement_percent",
    "run_workload",
    "run_workload_repeated",
    "average_workload_results",
]
