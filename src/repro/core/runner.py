"""Workload runner: drives a store variant through batched workloads.

The paper runs every workload in batches of one fifth of the query set, runs
each test six times to warm caches/views/graph content, and reports the
average TTI of the last five runs.  :func:`run_workload` executes a single
pass; :func:`run_workload_repeated` reproduces the warm-up protocol by
repeating the pass and averaging the retained repetitions (state accumulated
by the variant — views, transferred partitions, Q-matrices — persists across
repetitions, which is what makes the later runs "warm").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import WorkloadError
from repro.sparql.ast import SelectQuery

from repro.core.metrics import BatchResult, WorkloadResult
from repro.core.variants import RDBGDB, StoreVariant

__all__ = ["run_workload", "run_workload_repeated", "average_workload_results"]


def run_workload(
    variant: StoreVariant,
    batches: Sequence[Sequence[SelectQuery]],
    label: str | None = None,
    prepare: bool = True,
) -> WorkloadResult:
    """Run every batch online, invoking the offline phase after each one.

    ``prepare`` feeds the entire workload to the variant first, which only
    matters for policies that are defined to see the whole future (one-off
    mode); the other variants ignore it.
    """
    if not batches:
        raise WorkloadError("a workload needs at least one batch")
    all_queries: List[SelectQuery] = [q for batch in batches for q in batch]
    if prepare:
        variant.prepare(all_queries)

    result = WorkloadResult(label=label or variant.name)
    for index, batch in enumerate(batches):
        batch_result = variant.run_batch(batch, batch_index=index)
        result.batches.append(batch_result)
        upcoming = batches[index + 1] if index + 1 < len(batches) else None
        variant.offline_phase(batch, upcoming=upcoming)
    if isinstance(variant, RDBGDB):
        result.qmatrix_sum = variant.qmatrix_sum()
    return result


def run_workload_repeated(
    variant: StoreVariant,
    batches: Sequence[Sequence[SelectQuery]],
    repetitions: int = 6,
    discard: int = 1,
    label: str | None = None,
) -> WorkloadResult:
    """Repeat the workload and average the retained repetitions.

    Parameters
    ----------
    repetitions:
        Total passes over the workload (the paper uses 6).
    discard:
        Leading passes to discard as warm-up (the paper discards 1).
    """
    if repetitions < 1:
        raise WorkloadError("repetitions must be at least 1")
    if not 0 <= discard < repetitions:
        raise WorkloadError("discard must be smaller than repetitions")
    passes: List[WorkloadResult] = []
    for repetition in range(repetitions):
        passes.append(run_workload(variant, batches, label=label, prepare=(repetition == 0)))
    kept = passes[discard:]
    averaged = average_workload_results(kept, label=label or variant.name)
    averaged.qmatrix_sum = passes[-1].qmatrix_sum
    return averaged


def average_workload_results(results: Sequence[WorkloadResult], label: str) -> WorkloadResult:
    """Average batch TTIs element-wise across several workload passes.

    The averaged result keeps the batch structure but carries synthetic
    :class:`BatchResult` objects whose only populated record is dropped; TTI
    is restored via an explicit ``_tti`` override.
    """
    if not results:
        raise WorkloadError("cannot average zero workload results")
    batch_count = len(results[0].batches)
    if any(len(r.batches) != batch_count for r in results):
        raise WorkloadError("all workload results must have the same number of batches")

    averaged = WorkloadResult(label=label)
    for index in range(batch_count):
        batch = _AveragedBatch(index=index)
        batch.set_tti(sum(r.batches[index].tti for r in results) / len(results))
        batch.set_graph_seconds(sum(r.batches[index].graph_seconds for r in results) / len(results))
        averaged.batches.append(batch)
    return averaged


class _AveragedBatch(BatchResult):
    """A batch whose TTI is a precomputed average rather than a record sum."""

    def __init__(self, index: int):
        super().__init__(index=index)
        self._tti_override = 0.0
        self._graph_override = 0.0

    def set_tti(self, value: float) -> None:
        self._tti_override = value

    def set_graph_seconds(self, value: float) -> None:
        self._graph_override = value

    @property
    def tti(self) -> float:  # type: ignore[override]
        return self._tti_override

    @property
    def graph_seconds(self) -> float:  # type: ignore[override]
        return self._graph_override

    @property
    def graph_cost_share(self) -> float:  # type: ignore[override]
        if self._tti_override <= 0.0:
            return 0.0
        return self._graph_override / self._tti_override
