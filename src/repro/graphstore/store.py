"""Graph store facade (the Neo4j stand-in of the dual-store structure).

The graph store is the *accelerator*: it holds only the triple partitions the
tuner has transferred, is bounded by a storage budget ``B_G``, is expensive to
bulk-load (the paper's reason for not keeping the master copy here), and is
fast for complex queries thanks to index-free adjacency.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.errors import StorageBudgetExceeded, StorageError, UnknownPartitionError
from repro.execution import ExecutionResult
from repro.rdf.terms import IRI, Triple
from repro.sparql.ast import SelectQuery, TriplePattern

from repro.graphstore.matcher import GraphMatcher
from repro.graphstore.property_graph import PropertyGraph

__all__ = ["GraphStore"]


class GraphStore:
    """A budget-constrained, partition-granular native graph store.

    Parameters
    ----------
    storage_budget:
        Maximum number of triples the store may hold (the paper's ``B_G``).
        ``None`` means unbounded (useful for the standalone Table 1 sweep).
    cost_model:
        Prices traversal work and bulk imports.
    throttle:
        Optional :class:`ResourceThrottle` modelling limited spare IO/CPU
        (Section 6.3.3); scales query latency and records Figure 7 samples.
    """

    def __init__(
        self,
        storage_budget: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        throttle: Optional[ResourceThrottle] = None,
    ):
        if storage_budget is not None and storage_budget < 0:
            raise StorageError("storage budget must be non-negative")
        self.storage_budget = storage_budget
        self.cost_model = cost_model
        self.throttle = throttle
        self.graph = PropertyGraph()
        self._matcher = GraphMatcher(self.graph)
        self._partitions: Dict[IRI, int] = {}
        self.total_import_seconds = 0.0
        self.import_count = 0
        # Serializes the budget check with the partition insert/removal it
        # guards.  Without it, two concurrent apply_moves (e.g. two tuning
        # daemons sharing one store) can both pass `fits()` and together
        # overshoot the budget — a re-entrant lock because an idempotent
        # partition refresh evicts from inside load_partition.
        self._budget_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Partition management
    # ------------------------------------------------------------------ #
    @property
    def loaded_predicates(self) -> Set[IRI]:
        """Predicates whose partitions currently live in the graph store."""
        with self._budget_lock:
            return set(self._partitions)

    def partition_size(self, predicate: IRI) -> int:
        try:
            return self._partitions[predicate]
        except KeyError:
            raise UnknownPartitionError(f"partition {predicate.value!r} is not loaded") from None

    def used_capacity(self) -> int:
        """Triples currently stored."""
        with self._budget_lock:
            return sum(self._partitions.values())

    def remaining_capacity(self) -> Optional[int]:
        """Triples that still fit, or ``None`` when unbounded."""
        if self.storage_budget is None:
            return None
        with self._budget_lock:
            return self.storage_budget - sum(self._partitions.values())

    def fits(self, triple_count: int) -> bool:
        remaining = self.remaining_capacity()
        return remaining is None or triple_count <= remaining

    def load_partition(self, predicate: IRI, triples: Iterable[Triple]) -> float:
        """Bulk-import one triple partition; returns the import latency.

        Raises
        ------
        StorageBudgetExceeded
            If the partition does not fit in the remaining budget.  Nothing is
            loaded in that case.
        StorageError
            If a triple's predicate differs from ``predicate``.
        """
        staged = list(triples)
        for triple in staged:
            if triple.predicate != predicate:
                raise StorageError(
                    f"triple predicate {triple.predicate.value!r} does not belong to partition {predicate.value!r}"
                )
        # Budget check and partition insert form one atomic section: two
        # concurrent loads must serialize here, or both could observe enough
        # remaining capacity and together exceed the budget.
        with self._budget_lock:
            if predicate in self._partitions:
                # Re-loading an existing partition replaces it (idempotent refresh).
                self.evict_partition(predicate)
            if not self.fits(len(staged)):
                raise StorageBudgetExceeded(
                    f"partition {predicate.value!r} ({len(staged)} triples) exceeds the remaining "
                    f"graph-store budget ({self.remaining_capacity()} triples)"
                )
            added = self.graph.add_triples(staged)
            self._partitions[predicate] = added
            # Accounting stays inside the lock: the += read-modify-writes
            # would otherwise lose updates under the same two-loader
            # concurrency the lock exists for — and the corrupted totals
            # would be persisted verbatim by snapshot_state().
            seconds = self.cost_model.graph_import_seconds(added)
            if self.throttle is not None:
                seconds = self.throttle.apply(seconds)
            self.total_import_seconds += seconds
            self.import_count += 1
        return seconds

    def evict_partition(self, predicate: IRI) -> int:
        """Remove one partition; returns the number of triples evicted."""
        with self._budget_lock:
            if predicate not in self._partitions:
                raise UnknownPartitionError(f"partition {predicate.value!r} is not loaded")
            removed = self.graph.remove_predicate(predicate)
            del self._partitions[predicate]
            return removed

    def clear(self) -> None:
        """Evict everything (used when re-initialising an experiment)."""
        with self._budget_lock:
            for predicate in list(self._partitions):
                self.evict_partition(predicate)

    def __len__(self) -> int:
        return self.used_capacity()

    # ------------------------------------------------------------------ #
    # Coverage checks used by the query processor
    # ------------------------------------------------------------------ #
    def covers(self, predicates: Iterable[IRI]) -> bool:
        """True when every given predicate's partition is loaded."""
        return set(predicates) <= self.loaded_predicates

    def covers_query(self, query: SelectQuery) -> bool:
        return self.covers(query.predicates())

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        pattern_order: Sequence[TriplePattern] | None = None,
    ) -> ExecutionResult:
        """Evaluate a query whose predicates are all loaded.

        Raises
        ------
        StorageError
            When some predicate of the query has not been transferred; the
            query processor is responsible for routing such queries to the
            relational store instead.
        """
        missing = query.predicates() - self.loaded_predicates
        if missing:
            names = ", ".join(sorted(p.value for p in missing))
            raise StorageError(f"graph store does not hold partitions for: {names}")
        result = self._matcher.execute(query, pattern_order=pattern_order)
        seconds = self.cost_model.graph_query_seconds(result.counters)
        if self.throttle is not None:
            seconds = self.throttle.apply(seconds)
        result.seconds = seconds
        result.store = "graph"
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def partition_sizes(self) -> Dict[IRI, int]:
        with self._budget_lock:
            return dict(self._partitions)

    def predicates(self) -> List[IRI]:
        with self._budget_lock:
            return sorted(self._partitions, key=lambda p: p.value)

    # ------------------------------------------------------------------ #
    # Durable snapshots (repro.persist)
    # ------------------------------------------------------------------ #
    def snapshot_state(self) -> dict:
        """JSON-serializable accelerator bookkeeping.

        Records the residency list **in insertion order** (dict order of
        ``_partitions``) plus budget/import accounting.  The partition
        *contents* are serialized separately by :mod:`repro.persist` from the
        property graph itself — a resident replica is the partition *as it
        was transferred* and may legitimately lag the master copy (inserts go
        to the relational store only), so refeeding it from the restored
        master would silently grow it.  Replaying loads in residency order
        reproduces the property graph's adjacency-list and edge-list orders,
        which the matcher's result order depends on.
        """
        with self._budget_lock:
            return {
                "resident": [predicate.value for predicate in self._partitions],
                "storage_budget": self.storage_budget,
                "total_import_seconds": self.total_import_seconds,
                "import_count": self.import_count,
            }

    def restore_state(
        self, state: dict, partition_source: Callable[[IRI], List[Triple]]
    ) -> None:
        """Refill an empty store from :meth:`snapshot_state`.

        ``partition_source`` maps a predicate to the exact replica content
        recorded in the snapshot (decoded by :mod:`repro.persist`).  Import
        accounting is restored from the snapshot rather than re-charged: a
        warm restart did not physically re-import anything in the
        modelled-cost world, and the throttle (if any) must not observe
        phantom imports.
        """
        if self._partitions:
            raise StorageError("restore_state requires an empty graph store")
        with self._budget_lock:
            self.storage_budget = state["storage_budget"]
            for value in state["resident"]:
                predicate = IRI(value)
                staged = partition_source(predicate)
                added = self.graph.add_triples(staged)
                self._partitions[predicate] = added
            self.total_import_seconds = float(state["total_import_seconds"])
            self.import_count = int(state["import_count"])
