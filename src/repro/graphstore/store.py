"""Graph store facade (the Neo4j stand-in of the dual-store structure).

The graph store is the *accelerator*: it holds only the triple partitions the
tuner has transferred, is bounded by a storage budget ``B_G``, is expensive to
bulk-load (the paper's reason for not keeping the master copy here), and is
fast for complex queries thanks to index-free adjacency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.cost.model import CostModel, DEFAULT_COST_MODEL
from repro.cost.resources import ResourceThrottle
from repro.errors import StorageBudgetExceeded, StorageError, UnknownPartitionError
from repro.execution import ExecutionResult
from repro.rdf.terms import IRI, Triple
from repro.sparql.ast import SelectQuery, TriplePattern

from repro.graphstore.matcher import GraphMatcher
from repro.graphstore.property_graph import PropertyGraph

__all__ = ["GraphStore"]


class GraphStore:
    """A budget-constrained, partition-granular native graph store.

    Parameters
    ----------
    storage_budget:
        Maximum number of triples the store may hold (the paper's ``B_G``).
        ``None`` means unbounded (useful for the standalone Table 1 sweep).
    cost_model:
        Prices traversal work and bulk imports.
    throttle:
        Optional :class:`ResourceThrottle` modelling limited spare IO/CPU
        (Section 6.3.3); scales query latency and records Figure 7 samples.
    """

    def __init__(
        self,
        storage_budget: Optional[int] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        throttle: Optional[ResourceThrottle] = None,
    ):
        if storage_budget is not None and storage_budget < 0:
            raise StorageError("storage budget must be non-negative")
        self.storage_budget = storage_budget
        self.cost_model = cost_model
        self.throttle = throttle
        self.graph = PropertyGraph()
        self._matcher = GraphMatcher(self.graph)
        self._partitions: Dict[IRI, int] = {}
        self.total_import_seconds = 0.0
        self.import_count = 0

    # ------------------------------------------------------------------ #
    # Partition management
    # ------------------------------------------------------------------ #
    @property
    def loaded_predicates(self) -> Set[IRI]:
        """Predicates whose partitions currently live in the graph store."""
        return set(self._partitions)

    def partition_size(self, predicate: IRI) -> int:
        try:
            return self._partitions[predicate]
        except KeyError:
            raise UnknownPartitionError(f"partition {predicate.value!r} is not loaded") from None

    def used_capacity(self) -> int:
        """Triples currently stored."""
        return sum(self._partitions.values())

    def remaining_capacity(self) -> Optional[int]:
        """Triples that still fit, or ``None`` when unbounded."""
        if self.storage_budget is None:
            return None
        return self.storage_budget - self.used_capacity()

    def fits(self, triple_count: int) -> bool:
        remaining = self.remaining_capacity()
        return remaining is None or triple_count <= remaining

    def load_partition(self, predicate: IRI, triples: Iterable[Triple]) -> float:
        """Bulk-import one triple partition; returns the import latency.

        Raises
        ------
        StorageBudgetExceeded
            If the partition does not fit in the remaining budget.  Nothing is
            loaded in that case.
        StorageError
            If a triple's predicate differs from ``predicate``.
        """
        staged = list(triples)
        for triple in staged:
            if triple.predicate != predicate:
                raise StorageError(
                    f"triple predicate {triple.predicate.value!r} does not belong to partition {predicate.value!r}"
                )
        if predicate in self._partitions:
            # Re-loading an existing partition replaces it (idempotent refresh).
            self.evict_partition(predicate)
        if not self.fits(len(staged)):
            raise StorageBudgetExceeded(
                f"partition {predicate.value!r} ({len(staged)} triples) exceeds the remaining "
                f"graph-store budget ({self.remaining_capacity()} triples)"
            )
        added = self.graph.add_triples(staged)
        self._partitions[predicate] = added
        seconds = self.cost_model.graph_import_seconds(added)
        if self.throttle is not None:
            seconds = self.throttle.apply(seconds)
        self.total_import_seconds += seconds
        self.import_count += 1
        return seconds

    def evict_partition(self, predicate: IRI) -> int:
        """Remove one partition; returns the number of triples evicted."""
        if predicate not in self._partitions:
            raise UnknownPartitionError(f"partition {predicate.value!r} is not loaded")
        removed = self.graph.remove_predicate(predicate)
        del self._partitions[predicate]
        return removed

    def clear(self) -> None:
        """Evict everything (used when re-initialising an experiment)."""
        for predicate in list(self._partitions):
            self.evict_partition(predicate)

    def __len__(self) -> int:
        return self.used_capacity()

    # ------------------------------------------------------------------ #
    # Coverage checks used by the query processor
    # ------------------------------------------------------------------ #
    def covers(self, predicates: Iterable[IRI]) -> bool:
        """True when every given predicate's partition is loaded."""
        return set(predicates) <= self.loaded_predicates

    def covers_query(self, query: SelectQuery) -> bool:
        return self.covers(query.predicates())

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        pattern_order: Sequence[TriplePattern] | None = None,
    ) -> ExecutionResult:
        """Evaluate a query whose predicates are all loaded.

        Raises
        ------
        StorageError
            When some predicate of the query has not been transferred; the
            query processor is responsible for routing such queries to the
            relational store instead.
        """
        missing = query.predicates() - self.loaded_predicates
        if missing:
            names = ", ".join(sorted(p.value for p in missing))
            raise StorageError(f"graph store does not hold partitions for: {names}")
        result = self._matcher.execute(query, pattern_order=pattern_order)
        seconds = self.cost_model.graph_query_seconds(result.counters)
        if self.throttle is not None:
            seconds = self.throttle.apply(seconds)
        result.seconds = seconds
        result.store = "graph"
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def partition_sizes(self) -> Dict[IRI, int]:
        return dict(self._partitions)

    def predicates(self) -> List[IRI]:
        return sorted(self._partitions, key=lambda p: p.value)
