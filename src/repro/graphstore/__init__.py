"""Native graph store (Neo4j stand-in): property graph, traversal matcher, budgeted store."""

from repro.graphstore.matcher import GraphMatcher
from repro.graphstore.property_graph import PropertyGraph
from repro.graphstore.store import GraphStore

__all__ = ["PropertyGraph", "GraphMatcher", "GraphStore"]
