"""Basic-graph-pattern matching by graph traversal with work accounting.

The matcher evaluates a BGP by expanding bindings one pattern at a time using
the adjacency lists of :class:`~repro.graphstore.property_graph.PropertyGraph`
— the index-free-adjacency evaluation style the paper attributes to Neo4j.
Work is charged as:

* ``nodes_expanded`` — each time a vertex's adjacency list is opened,
* ``edges_traversed`` — each neighbour (or type-scan edge) inspected.

Because each step extends existing bindings through adjacency lists, the work
is proportional to the traversed neighbourhood rather than the total graph
size, which is what keeps the graph store's latency flat as the knowledge
graph grows (the paper's Table 1).

Like the relational ID-space executor, the matcher follows the
**late-materialization** discipline: the pipeline is a flat variable schema
plus positional tuples (extending a solution is one tuple concatenation, not
a dict copy), and per-solution dictionaries are materialized exactly once,
at projection, for the rows that survived filters, DISTINCT, and LIMIT.  The
graph side has no term dictionary — vertices *are* terms — so its tuples
hold terms rather than ids, but the decode-late/allocate-late structure is
the same, keeping DualStore store-vs-store comparisons apples-to-apples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cost.counters import WorkCounters
from repro.errors import QueryExecutionError
from repro.execution import ExecutionResult
from repro.resilience.deadline import current_deadline, probed_rows
from repro.rdf.terms import IRI, TermLike, Variable
from repro.sparql.ast import Binding, SelectQuery, TriplePattern
from repro.sparql.algebra import order_patterns_greedily

from repro.graphstore.property_graph import PropertyGraph

__all__ = ["GraphMatcher"]

#: One pipeline row: bound terms, positionally aligned with the schema.
_TermRow = Tuple[TermLike, ...]


class GraphMatcher:
    """Evaluates SELECT queries against a property graph by traversal."""

    def __init__(self, graph: PropertyGraph):
        self._graph = graph

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        pattern_order: Sequence[TriplePattern] | None = None,
    ) -> ExecutionResult:
        """Match the query's BGP and return projected solutions.

        ``pattern_order`` overrides the traversal order (used by the planner
        ablation benchmark); by default patterns are ordered greedily by
        selectivity and per-predicate edge counts.
        """
        for pattern in query.patterns:
            if not isinstance(pattern.predicate, IRI):
                raise QueryExecutionError(
                    "the graph store only evaluates patterns with concrete predicates"
                )

        cardinality = {p: self._graph.predicate_count(p) for p in {pt.predicate for pt in query.patterns}}
        if pattern_order is None:
            ordered = order_patterns_greedily(query.patterns, cardinality=cardinality)
        else:
            ordered = list(pattern_order)

        counters = WorkCounters(queries_issued=1)
        schema: Tuple[str, ...] = ()
        rows: List[_TermRow] = [()]
        for pattern in ordered:
            schema, rows = self._extend(schema, rows, pattern, counters)
            if not rows:
                break

        if query.filters and rows:
            rows = self._filter_rows(schema, rows, query.filters)

        names = query.projected_names()
        positions = tuple(schema.index(n) if n in schema else -1 for n in names)
        if query.distinct:
            deadline = current_deadline()
            row_iter = rows if deadline is None else probed_rows(rows, deadline, counters)
            seen: set = set()
            unique: List[_TermRow] = []
            for row in row_iter:
                key = tuple(row[p] if p >= 0 else None for p in positions)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        if query.limit is not None:
            rows = rows[: query.limit]

        # One materialization pass: solution dicts exist only for survivors.
        bound = [(name, p) for name, p in zip(names, positions) if p >= 0]
        projected: List[Binding] = [{name: row[p] for name, p in bound} for row in rows]
        counters.results_produced += len(projected)

        return ExecutionResult(
            bindings=projected,
            variables=tuple(names),
            counters=counters,
            store="graph",
        )

    # ------------------------------------------------------------------ #
    # Pattern extension
    # ------------------------------------------------------------------ #
    def _extend(
        self,
        schema: Tuple[str, ...],
        rows: List[_TermRow],
        pattern: TriplePattern,
        counters: WorkCounters,
    ) -> Tuple[Tuple[str, ...], List[_TermRow]]:
        """Extend every pipeline row through one pattern's adjacency lists.

        Cancellation: with an ambient deadline active
        (:mod:`repro.resilience.deadline`) the expansion loops probe it —
        per stride for the bounded adjacency expansions, per pipeline row
        for the relationship-type scans (whose per-row cost is the whole
        edge list).  Probes never touch the counters.
        """
        graph = self._graph
        predicate = pattern.predicate
        assert isinstance(predicate, IRI)
        deadline = current_deadline()
        if deadline is not None:
            deadline.check(counters)

        subject_pos, subject_const, subject_var = self._operand(pattern.subject, schema)
        object_pos, object_const, object_var = self._operand(pattern.object, schema)

        out: List[_TermRow] = []
        append = out.append
        probed = rows if deadline is None else probed_rows(rows, deadline, counters)

        if subject_var is None and object_var is None:
            # Both endpoints known per row: containment along the adjacency list.
            for row in probed:
                subject = subject_const if subject_pos < 0 else row[subject_pos]
                obj = object_const if object_pos < 0 else row[object_pos]
                counters.nodes_expanded += 1
                neighbours = graph.out_neighbours(subject, predicate)
                counters.edges_traversed += len(neighbours)
                if obj in neighbours:
                    append(row)
            return schema, out

        if subject_var is None:
            # Forward expansion: the object variable is new.
            for row in probed:
                subject = subject_const if subject_pos < 0 else row[subject_pos]
                counters.nodes_expanded += 1
                neighbours = graph.out_neighbours(subject, predicate)
                counters.edges_traversed += len(neighbours)
                for target in neighbours:
                    append(row + (target,))
            return schema + (object_var,), out

        if object_var is None:
            # Backward expansion: the subject variable is new.
            for row in probed:
                obj = object_const if object_pos < 0 else row[object_pos]
                counters.nodes_expanded += 1
                neighbours = graph.in_neighbours(obj, predicate)
                counters.edges_traversed += len(neighbours)
                for source in neighbours:
                    append(row + (source,))
            return schema + (subject_var,), out

        # Neither endpoint bound: relationship-type scan (per pipeline row,
        # exactly like expanding each solution through the type index).
        if subject_var == object_var:
            for row in rows:
                if deadline is not None:
                    deadline.check(counters)
                for source, target in graph.edges(predicate):
                    counters.edges_traversed += 1
                    if source == target:
                        append(row + (source,))
            return schema + (subject_var,), out
        for row in rows:
            if deadline is not None:
                deadline.check(counters)
            for source, target in graph.edges(predicate):
                counters.edges_traversed += 1
                append(row + (source, target))
        return schema + (subject_var, object_var), out

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _operand(
        term: TermLike, schema: Tuple[str, ...]
    ) -> Tuple[int, Optional[TermLike], Optional[str]]:
        """Lower one pattern endpoint against the schema.

        Returns ``(schema position | -1, constant | None, new var name |
        None)``: a bound operand has a position or a constant; an operand
        with a new-variable name is unresolved and will extend the schema.
        """
        if isinstance(term, Variable):
            if term.name in schema:
                return schema.index(term.name), None, None
            return -1, None, term.name
        return -1, term, None

    def _filter_rows(
        self, schema: Tuple[str, ...], rows: List[_TermRow], filters
    ) -> List[_TermRow]:
        """Apply FILTERs to tuple rows, materializing only each filter's own
        operands (semantics delegate to :meth:`Filter.evaluate`)."""
        compiled = []
        for flt in filters:
            var_slots = tuple(
                (v.name, schema.index(v.name) if v.name in schema else -1)
                for v in flt.variables()
            )
            compiled.append((flt, var_slots))
        out: List[_TermRow] = []
        for row in rows:
            keep = True
            for flt, var_slots in compiled:
                operand_binding = {name: row[p] for name, p in var_slots if p >= 0}
                if not flt.evaluate(operand_binding):
                    keep = False
                    break
            if keep:
                out.append(row)
        return out
