"""Basic-graph-pattern matching by graph traversal with work accounting.

The matcher evaluates a BGP by expanding bindings one pattern at a time using
the adjacency lists of :class:`~repro.graphstore.property_graph.PropertyGraph`
— the index-free-adjacency evaluation style the paper attributes to Neo4j.
Work is charged as:

* ``nodes_expanded`` — each time a vertex's adjacency list is opened,
* ``edges_traversed`` — each neighbour (or type-scan edge) inspected.

Because each step extends existing bindings through adjacency lists, the work
is proportional to the traversed neighbourhood rather than the total graph
size, which is what keeps the graph store's latency flat as the knowledge
graph grows (the paper's Table 1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cost.counters import WorkCounters
from repro.errors import QueryExecutionError
from repro.execution import ExecutionResult
from repro.rdf.terms import IRI, TermLike, Variable
from repro.sparql.ast import Binding, SelectQuery, TriplePattern
from repro.sparql.algebra import order_patterns_greedily

from repro.graphstore.property_graph import PropertyGraph

__all__ = ["GraphMatcher"]


class GraphMatcher:
    """Evaluates SELECT queries against a property graph by traversal."""

    def __init__(self, graph: PropertyGraph):
        self._graph = graph

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SelectQuery,
        pattern_order: Sequence[TriplePattern] | None = None,
    ) -> ExecutionResult:
        """Match the query's BGP and return projected solutions.

        ``pattern_order`` overrides the traversal order (used by the planner
        ablation benchmark); by default patterns are ordered greedily by
        selectivity and per-predicate edge counts.
        """
        for pattern in query.patterns:
            if not isinstance(pattern.predicate, IRI):
                raise QueryExecutionError(
                    "the graph store only evaluates patterns with concrete predicates"
                )

        cardinality = {p: self._graph.predicate_count(p) for p in {pt.predicate for pt in query.patterns}}
        if pattern_order is None:
            ordered = order_patterns_greedily(query.patterns, cardinality=cardinality)
        else:
            ordered = list(pattern_order)

        counters = WorkCounters(queries_issued=1)
        bindings: List[Binding] = [{}]
        for pattern in ordered:
            bindings = self._extend(bindings, pattern, counters)
            if not bindings:
                break

        bindings = [b for b in bindings if all(f.evaluate(b) for f in query.filters)]
        names = query.projected_names()
        projected = [{name: b[name] for name in names if name in b} for b in bindings]
        if query.distinct:
            projected = _distinct(projected, names)
        if query.limit is not None:
            projected = projected[: query.limit]
        counters.results_produced += len(projected)

        return ExecutionResult(
            bindings=projected,
            variables=tuple(names),
            counters=counters,
            store="graph",
        )

    # ------------------------------------------------------------------ #
    # Pattern extension
    # ------------------------------------------------------------------ #
    def _extend(
        self,
        bindings: List[Binding],
        pattern: TriplePattern,
        counters: WorkCounters,
    ) -> List[Binding]:
        output: List[Binding] = []
        for binding in bindings:
            output.extend(self._extend_one(binding, pattern, counters))
        return output

    def _extend_one(
        self,
        binding: Binding,
        pattern: TriplePattern,
        counters: WorkCounters,
    ) -> List[Binding]:
        predicate = pattern.predicate
        assert isinstance(predicate, IRI)
        subject = self._resolve(pattern.subject, binding)
        obj = self._resolve(pattern.object, binding)

        results: List[Binding] = []

        if subject is not None and obj is not None:
            # Both endpoints known: a containment check along the adjacency list.
            counters.nodes_expanded += 1
            neighbours = self._graph.out_neighbours(subject, predicate)
            counters.edges_traversed += len(neighbours)
            if obj in neighbours:
                results.append(dict(binding))
            return results

        if subject is not None:
            counters.nodes_expanded += 1
            neighbours = self._graph.out_neighbours(subject, predicate)
            counters.edges_traversed += len(neighbours)
            for target in neighbours:
                extended = self._bind(binding, pattern.object, target)
                if extended is not None:
                    results.append(extended)
            return results

        if obj is not None:
            counters.nodes_expanded += 1
            neighbours = self._graph.in_neighbours(obj, predicate)
            counters.edges_traversed += len(neighbours)
            for source in neighbours:
                extended = self._bind(binding, pattern.subject, source)
                if extended is not None:
                    results.append(extended)
            return results

        # Neither endpoint bound: relationship-type scan.
        for source, target in self._graph.edges(predicate):
            counters.edges_traversed += 1
            extended = self._bind(binding, pattern.subject, source)
            if extended is None:
                continue
            extended = self._bind(extended, pattern.object, target)
            if extended is not None:
                results.append(extended)
        return results

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve(term: TermLike, binding: Binding) -> Optional[TermLike]:
        """A concrete vertex for ``term`` under ``binding``, or ``None``."""
        if isinstance(term, Variable):
            return binding.get(term.name)
        return term

    @staticmethod
    def _bind(binding: Binding, term: TermLike, value: TermLike) -> Optional[Binding]:
        """Bind ``term`` (a variable or constant) to ``value`` if compatible."""
        if isinstance(term, Variable):
            existing = binding.get(term.name)
            if existing is not None:
                return dict(binding) if existing == value else None
            extended = dict(binding)
            extended[term.name] = value
            return extended
        return dict(binding) if term == value else None


def _distinct(bindings: List[Binding], names: tuple[str, ...]) -> List[Binding]:
    seen: set[tuple] = set()
    unique: List[Binding] = []
    for binding in bindings:
        key = tuple(binding.get(name) for name in names)
        if key not in seen:
            seen.add(key)
            unique.append(binding)
    return unique
