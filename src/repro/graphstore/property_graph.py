"""An adjacency-list property graph — the Neo4j stand-in's storage layer.

The defining property the paper relies on is *index-free adjacency*: once a
vertex is located, its neighbours are reached by following its adjacency
list, so traversal cost depends only on the traversed neighbourhood.  This
class stores exactly that structure:

* ``out`` adjacency — vertex → predicate → list of target vertices,
* ``in`` adjacency — vertex → predicate → list of source vertices,
* a per-predicate edge list (Neo4j's relationship-type scan), used when a
  pattern binds neither endpoint.

Vertices are RDF terms (IRIs, literals, blank nodes); edges are labelled by
predicate IRIs.  Parallel edges with the same label are deduplicated, like
triples in an RDF graph.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.rdf.terms import IRI, TermLike, Triple

__all__ = ["PropertyGraph"]


class PropertyGraph:
    """In-memory labelled multigraph with per-predicate edge indexes."""

    def __init__(self) -> None:
        self._out: Dict[TermLike, Dict[IRI, List[TermLike]]] = defaultdict(lambda: defaultdict(list))
        self._in: Dict[TermLike, Dict[IRI, List[TermLike]]] = defaultdict(lambda: defaultdict(list))
        self._edges_by_predicate: Dict[IRI, List[Tuple[TermLike, TermLike]]] = defaultdict(list)
        self._edge_set: Set[Tuple[TermLike, IRI, TermLike]] = set()
        self._vertices: Set[TermLike] = set()

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, subject: TermLike, predicate: IRI, obj: TermLike) -> bool:
        """Add one labelled edge; returns ``True`` when it was new."""
        key = (subject, predicate, obj)
        if key in self._edge_set:
            return False
        self._edge_set.add(key)
        self._out[subject][predicate].append(obj)
        self._in[obj][predicate].append(subject)
        self._edges_by_predicate[predicate].append((subject, obj))
        self._vertices.add(subject)
        self._vertices.add(obj)
        return True

    def add_triples(self, triples: Iterable[Triple]) -> int:
        """Add RDF triples as edges; returns the number of new edges."""
        return sum(1 for t in triples if self.add_edge(t.subject, t.predicate, t.object))

    def remove_predicate(self, predicate: IRI) -> int:
        """Remove every edge with the given label; returns edges removed.

        This is how a triple partition is *evicted* from the graph store.
        Vertex entries left with no edges are dropped as well.
        """
        pairs = self._edges_by_predicate.pop(predicate, [])
        for subject, obj in pairs:
            self._edge_set.discard((subject, predicate, obj))
            out_lists = self._out.get(subject)
            if out_lists is not None and predicate in out_lists:
                out_lists.pop(predicate, None)
            in_lists = self._in.get(obj)
            if in_lists is not None and predicate in in_lists:
                in_lists.pop(predicate, None)
        # Drop now-isolated vertices.
        for subject, obj in pairs:
            for vertex in (subject, obj):
                if not self._out.get(vertex) and not self._in.get(vertex):
                    self._out.pop(vertex, None)
                    self._in.pop(vertex, None)
                    self._vertices.discard(vertex)
        return len(pairs)

    # ------------------------------------------------------------------ #
    # Size
    # ------------------------------------------------------------------ #
    def edge_count(self) -> int:
        return len(self._edge_set)

    def vertex_count(self) -> int:
        return len(self._vertices)

    def predicate_count(self, predicate: IRI) -> int:
        return len(self._edges_by_predicate.get(predicate, ()))

    def predicates(self) -> List[IRI]:
        return sorted((p for p, pairs in self._edges_by_predicate.items() if pairs), key=lambda p: p.value)

    def __len__(self) -> int:
        return self.edge_count()

    def __contains__(self, edge: Tuple[TermLike, IRI, TermLike]) -> bool:
        return edge in self._edge_set

    # ------------------------------------------------------------------ #
    # Traversal access paths (index-free adjacency)
    # ------------------------------------------------------------------ #
    def out_neighbours(self, vertex: TermLike, predicate: IRI) -> List[TermLike]:
        """Targets of ``vertex --predicate-->``; empty when none."""
        return self._out.get(vertex, {}).get(predicate, [])

    def in_neighbours(self, vertex: TermLike, predicate: IRI) -> List[TermLike]:
        """Sources of ``--predicate--> vertex``; empty when none."""
        return self._in.get(vertex, {}).get(predicate, [])

    def edges(self, predicate: IRI) -> Iterator[Tuple[TermLike, TermLike]]:
        """All (subject, object) pairs carrying ``predicate`` (type scan)."""
        return iter(self._edges_by_predicate.get(predicate, ()))

    def has_vertex(self, vertex: TermLike) -> bool:
        return vertex in self._vertices

    def degree(self, vertex: TermLike) -> int:
        """Total degree of a vertex across all predicates."""
        out_degree = sum(len(v) for v in self._out.get(vertex, {}).values())
        in_degree = sum(len(v) for v in self._in.get(vertex, {}).values())
        return out_degree + in_degree

    def triples(self) -> Iterator[Triple]:
        """Decode the stored edges back into RDF triples."""
        for subject, predicate, obj in self._edge_set:
            yield Triple(subject, predicate, obj)
