"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without the ``wheel`` package
(offline CI containers) via ``python setup.py develop`` or
``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
