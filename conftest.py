"""Pytest bootstrap: make ``src/`` importable even without installation.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in offline environments without the ``wheel``
package); this fallback keeps ``pytest`` runnable straight from a fresh
checkout.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
